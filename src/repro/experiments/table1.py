"""Table 1 (§3.3): the cost of host-PT fragmentation, without PTEMagnet.

Methodology, as in the paper: pagerank runs inside the VM twice on the
*default* kernel -- once standalone and once after sharing the VM with a
churning stress-ng co-runner during its allocation phase. The co-runner is
stopped once pagerank finishes initialising, so the measurement window has
no contention for shared resources; the only difference between the runs
is the fragmentation the co-runner left behind in the host PT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import PlatformConfig
from ..metrics.counters import percent_change
from ..metrics.report import Table, format_percent
from .common import ColocationOutcome, run_colocated

#: stress-ng scheduler weight (the paper runs it with 12 threads).
STRESS_WEIGHT = 4


@dataclass
class Table1Result:
    """Standalone vs post-colocation measurements of pagerank."""

    standalone: ColocationOutcome
    colocated: ColocationOutcome

    def rows(self) -> List[Tuple[str, float]]:
        """(metric name, percent change) rows in the paper's order."""
        before = self.standalone.benchmark.counters
        after = self.colocated.benchmark.counters
        return [
            ("Execution time", percent_change(before.cycles, after.cycles)),
            (
                "Cache misses (data)",
                percent_change(
                    before.data_memory_accesses, after.data_memory_accesses
                ),
            ),
            ("TLB misses", percent_change(before.tlb_misses, after.tlb_misses)),
            (
                "Page walk cycles",
                percent_change(before.walk_cycles, after.walk_cycles),
            ),
            (
                "Cycles traversing host PT",
                percent_change(before.host_walk_cycles, after.host_walk_cycles),
            ),
            (
                "Guest PT accesses served by memory",
                percent_change(
                    before.gpt_memory_accesses, after.gpt_memory_accesses
                ),
            ),
            (
                "Host PT accesses served by memory",
                percent_change(
                    before.hpt_memory_accesses, after.hpt_memory_accesses
                ),
            ),
            (
                "Host PT fragmentation",
                percent_change(
                    before.host_pt_fragmentation, after.host_pt_fragmentation
                ),
            ),
        ]

    @property
    def fragmentation_before_after(self) -> Tuple[float, float]:
        return (
            self.standalone.benchmark.counters.host_pt_fragmentation,
            self.colocated.benchmark.counters.host_pt_fragmentation,
        )


def run_table1(
    platform: PlatformConfig = None, seed: int = 0
) -> Table1Result:
    """Reproduce Table 1 on the default (non-PTEMagnet) kernel."""
    platform = (platform or PlatformConfig()).with_ptemagnet(False)
    standalone = run_colocated(platform, "pagerank", corunners=(), seed=seed)
    colocated = run_colocated(
        platform,
        "pagerank",
        corunners=[("stress-ng", STRESS_WEIGHT)],
        seed=seed,
        stop_corunners_at_compute=True,
    )
    return Table1Result(standalone, colocated)


def render_table1(result: Table1Result) -> str:
    """Paper-style rendering of Table 1."""
    table = Table(
        ["Metric", "Change", "Paper"],
        title="Table 1: pagerank colocated with stress-ng vs standalone",
    )
    paper = ["+11%", "<1%", "<1%", "+61%", "+117%", "+3%", "+283%", "+242%"]
    for (name, change), reference in zip(result.rows(), paper):
        table.add_row(name, format_percent(change), reference)
    before, after = result.fragmentation_before_after
    footer = (
        f"\nHost PT fragmentation metric: {before:.2f} standalone -> "
        f"{after:.2f} colocated (paper: 2.8 -> 6.8)"
    )
    return table.render() + footer
