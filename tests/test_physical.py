"""Tests for the physical-memory frame bookkeeping."""

import pytest

from repro.errors import InvalidAddressError
from repro.mem.physical import FrameState, PhysicalMemory


class TestConstruction:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)

    def test_size_bytes(self):
        mem = PhysicalMemory(100)
        assert mem.size_bytes == 100 * 4096

    def test_all_frames_start_free(self):
        mem = PhysicalMemory(16)
        assert all(mem.is_free(frame) for frame in range(16))


class TestStateTransitions:
    def test_set_and_query_state(self):
        mem = PhysicalMemory(16)
        mem.set_state(3, FrameState.USER, owner=42)
        assert mem.state_of(3) is FrameState.USER
        assert mem.owner_of(3) == 42

    def test_free_clears_owner(self):
        mem = PhysicalMemory(16)
        mem.set_state(3, FrameState.USER, owner=42)
        mem.set_state(3, FrameState.FREE)
        assert mem.is_free(3)
        assert mem.owner_of(3) is None

    def test_set_range_state(self):
        mem = PhysicalMemory(16)
        mem.set_range_state(4, 4, FrameState.RESERVED, owner=1)
        assert all(
            mem.state_of(frame) is FrameState.RESERVED for frame in range(4, 8)
        )

    def test_state_change_without_owner_clears_owner(self):
        mem = PhysicalMemory(16)
        mem.set_state(5, FrameState.USER, owner=9)
        mem.set_state(5, FrameState.RESERVED)
        assert mem.owner_of(5) is None

    def test_out_of_range_raises(self):
        mem = PhysicalMemory(16)
        with pytest.raises(InvalidAddressError):
            mem.state_of(16)
        with pytest.raises(InvalidAddressError):
            mem.set_state(-1, FrameState.USER)


class TestCountsAndScans:
    def test_count_in_state(self):
        mem = PhysicalMemory(16)
        mem.set_range_state(0, 3, FrameState.PAGE_TABLE)
        assert mem.count_in_state(FrameState.PAGE_TABLE) == 3
        assert mem.count_in_state(FrameState.FREE) == 13

    def test_frames_in_state(self):
        mem = PhysicalMemory(8)
        mem.set_state(2, FrameState.KERNEL)
        mem.set_state(5, FrameState.KERNEL)
        assert sorted(mem.frames_in_state(FrameState.KERNEL)) == [2, 5]

    def test_frames_in_free_state(self):
        mem = PhysicalMemory(4)
        mem.set_state(1, FrameState.USER)
        assert sorted(mem.frames_in_state(FrameState.FREE)) == [0, 2, 3]
