"""Tests for repro.obs: tracepoints, sinks, histogram, sampler, export.

Covers the observability contract end to end: enable/disable semantics
(including the all-off default), ring-buffer wraparound, JSONL and
Chrome trace round-trips, sampler determinism, and the guard that a
tracing-disabled run produces counters identical to an uninstrumented
one.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import PlatformConfig, Simulation
from repro.config import GuestConfig, HostConfig
from repro.errors import ReproError
from repro.obs import (
    TRACER,
    JsonlSink,
    Log2Histogram,
    PeriodicSampler,
    RingBufferSink,
    TraceEvent,
    capture,
    read_trace,
    standard_sampler,
    summarize,
    to_chrome,
    tracepoint,
)
from repro.obs.cli import main as obs_main
from repro.units import MB
from repro.workloads import ScriptedWorkload


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with tracing fully off."""
    TRACER.reset()
    yield
    TRACER.reset()


def make_sim(seed: int = 0) -> Simulation:
    return Simulation(
        PlatformConfig(
            host=HostConfig(memory_bytes=64 * MB),
            guest=GuestConfig(memory_bytes=32 * MB),
            seed=seed,
        )
    )


def run_touch(sim: Simulation, pages: int = 128):
    run = sim.add_workload(ScriptedWorkload.touch_region("t", pages))
    run.start_measurement()
    sim.run_until_finished(run)
    return run


# ---------------------------------------------------------------------- #
# Tracepoint registry and enable/disable semantics
# ---------------------------------------------------------------------- #

class TestTracepoints:
    def test_disabled_by_default(self):
        tp = tracepoint("unit.example")
        assert not tp.enabled
        tp.emit(x=1)  # silently dropped

    def test_registration_is_idempotent(self):
        assert tracepoint("unit.example") is tracepoint("unit.example")

    def test_invalid_names_rejected(self):
        for bad in ("NoDots", "Upper.case", "trailing.", ".leading", "a b.c"):
            with pytest.raises(ReproError):
                tracepoint(bad)

    def test_needs_both_sink_and_category(self):
        tp = tracepoint("unit.example")
        TRACER.enable("unit")
        assert not tp.enabled  # category on, no sink
        sink = RingBufferSink()
        TRACER.attach(sink)
        assert tp.enabled
        TRACER.disable("unit")
        assert not tp.enabled  # sink on, category off
        assert not TRACER.active

    def test_category_mask_is_selective(self):
        tp_a = tracepoint("layera.event")
        tp_b = tracepoint("layerb.event")
        sink = RingBufferSink()
        TRACER.attach(sink)
        TRACER.enable("layera")
        tp_a.emit(n=1)
        tp_b.emit(n=2)
        events = sink.events()
        assert [e.name for e in events] == ["layera.event"]

    def test_star_enables_everything(self):
        tp = tracepoint("unit.example")
        TRACER.attach(RingBufferSink())
        TRACER.enable("*")
        assert tp.enabled

    def test_events_carry_clock_and_sequence(self):
        tp = tracepoint("unit.example")
        sink = RingBufferSink()
        TRACER.attach(sink)
        TRACER.enable("unit")
        TRACER.advance(100)
        tp.emit(a=1)
        TRACER.advance(50)
        tp.emit(a=2)
        first, second = sink.events()
        assert (first.ts, second.ts) == (100, 150)
        assert second.seq == first.seq + 1
        assert first.args == {"a": 1}

    def test_capture_context_manager_restores_state(self):
        tp = tracepoint("unit.example")
        with capture("unit") as sink:
            assert tp.enabled
            tp.emit(x=1)
        assert not tp.enabled
        assert not TRACER.active
        assert len(sink.events()) == 1


# ---------------------------------------------------------------------- #
# Sinks
# ---------------------------------------------------------------------- #

class TestRingBuffer:
    def test_wraparound_keeps_newest(self):
        sink = RingBufferSink(capacity=4)
        tp = tracepoint("unit.example")
        TRACER.attach(sink)
        TRACER.enable("unit")
        for n in range(10):
            tp.emit(n=n)
        events = sink.events()
        assert len(events) == 4
        assert [e.args["n"] for e in events] == [6, 7, 8, 9]
        assert sink.total_events == 10
        assert sink.dropped_events == 6

    def test_clear(self):
        sink = RingBufferSink(capacity=4)
        tp = tracepoint("unit.example")
        TRACER.attach(sink)
        TRACER.enable("unit")
        tp.emit(n=1)
        sink.clear()
        assert len(sink) == 0


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "out.trace.jsonl"
        tp = tracepoint("unit.example")
        sink = JsonlSink(path)
        TRACER.attach(sink)
        TRACER.enable("unit")
        tp.emit(n=1, label="x")
        TRACER.advance(7)
        tp.emit(n=2)
        TRACER.detach(sink)
        sink.close()
        assert sink.events_written == 2
        events = read_trace(path)
        assert [e.args.get("n") for e in events] == [1, 2]
        assert events[1].ts == 7
        assert all(isinstance(e, TraceEvent) for e in events)

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "ts": 0, "turn": 0, "name": "a.b"}\nnot json\n')
        with pytest.raises(ReproError, match="line 2"):
            read_trace(path)


# ---------------------------------------------------------------------- #
# Log2 histogram
# ---------------------------------------------------------------------- #

class TestLog2Histogram:
    def test_percentile_matches_nearest_rank_on_midpoints(self):
        hist = Log2Histogram()
        for value in (1, 1, 2, 3, 100):
            hist.record(value)
        assert len(hist) == 5
        # Bucket midpoints: value 1 -> bucket 1 (midpoint 1), 2..3 ->
        # bucket 2 (midpoint 2.5), 100 -> bucket 7 (64..127 -> 95.5).
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(0.5) == 2.5
        assert hist.percentile(1.0) == 95.5

    def test_mean_min_max(self):
        hist = Log2Histogram()
        for value in (10, 20, 30):
            hist.record(value)
        assert hist.min == 10
        assert hist.max == 30
        assert hist.mean == pytest.approx(20.0)

    def test_bounded_memory(self):
        hist = Log2Histogram()
        for value in range(10_000):
            hist.record(value)
        assert len(hist.buckets) == Log2Histogram.NUM_BUCKETS
        assert hist.count == 10_000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Log2Histogram().record(-1)

    def test_snapshot_delta(self):
        hist = Log2Histogram()
        hist.record(5)
        before = hist.snapshot()
        hist.record(500)
        delta = hist.delta(before)
        assert delta.count == 1
        assert delta.percentile(0.5) == hist.bucket_midpoint(500 .bit_length())

    def test_dict_round_trip(self):
        hist = Log2Histogram()
        for value in (1, 7, 4096):
            hist.record(value)
        clone = Log2Histogram.from_dict(hist.to_dict())
        assert clone == hist

    def test_empty_percentile_is_zero(self):
        assert Log2Histogram().percentile(0.99) == 0.0
        assert Log2Histogram().percentile(0.0) == 0.0
        assert Log2Histogram().mean == 0.0

    def test_merge_disjoint_ranges(self):
        low = Log2Histogram()
        for value in (1, 2, 3):
            low.record(value)
        high = Log2Histogram()
        for value in (4096, 8192):
            high.record(value)
        low.merge(high)
        assert low.count == 5
        assert low.total == 1 + 2 + 3 + 4096 + 8192
        assert low.min == 1
        assert low.max == 8192
        assert sum(low.buckets) == 5
        # Median stays in the low cluster; the tail lands in the high one.
        assert low.percentile(0.5) == Log2Histogram.bucket_midpoint(2)
        assert low.percentile(0.99) == Log2Histogram.bucket_midpoint(14)

    def test_merge_into_empty_adopts_bounds(self):
        empty = Log2Histogram()
        other = Log2Histogram()
        other.record(7)
        empty.merge(other)
        assert (empty.min, empty.max, empty.count) == (7, 7, 1)

    def test_fault_latency_percentile_zero_samples(self):
        from repro.metrics.counters import PerfCounters

        assert PerfCounters().fault_latency_percentile(0.99) == 0.0


# ---------------------------------------------------------------------- #
# Periodic sampler
# ---------------------------------------------------------------------- #

class TestPeriodicSampler:
    def test_turn_cadence(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 64))
        sampler = sim.add_sampler(PeriodicSampler(sim, every_turns=2))
        sampler.add_probe("rss", lambda s: run.process.rss_pages)
        sim.run_until_finished(run)
        sampler.sample()
        points = sampler.series["rss"].points
        assert points, "no samples taken"
        # Cadence samples land on even turns (final sample may not).
        assert all(turn % 2 == 0 for turn, _v in points[:-1])
        assert points[-1][1] == 64

    def test_cycle_cadence_needs_active_tracing(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 64))
        with capture("sample"):
            sampler = sim.add_sampler(
                PeriodicSampler(sim, every_cycles=10_000)
            )
            sampler.add_probe("rss", lambda s: run.process.rss_pages)
            sim.run_until_finished(run)
        assert sampler.samples_taken > 0

    def test_validates_cadence(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            PeriodicSampler(sim)
        with pytest.raises(ValueError):
            PeriodicSampler(sim, every_turns=0)

    def test_deterministic_across_identical_runs(self):
        def series_for(seed):
            sim = make_sim(seed)
            run = sim.add_workload(ScriptedWorkload.touch_region("t", 96))
            sampler = sim.add_sampler(PeriodicSampler(sim, every_turns=2))
            sampler.add_probe("rss", lambda s: run.process.rss_pages)
            sampler.add_probe("free", lambda s: s.kernel.free_fraction)
            sim.run_until_finished(run)
            sampler.sample()
            return {
                name: ts.points for name, ts in sampler.series.items()
            }

        assert series_for(0) == series_for(0)
        assert series_for(3) == series_for(3)

    def test_standard_sampler_probe_set(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 64))
        sampler = sim.add_sampler(standard_sampler(sim, every_cycles=5_000))
        with capture():
            sim.run_until_finished(run)
            sampler.sample()
        for name in (
            "free_fraction",
            "part_entries",
            "part_unmapped_pages",
            "host_pt_fragmentation",
            "run_cycles",
            "rss_pages",
            "free_blocks_order0",
        ):
            assert name in sampler.series, name
            assert sampler.series[name].points

    def test_samples_ride_along_in_trace(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 64))
        sampler = sim.add_sampler(PeriodicSampler(sim, every_turns=1))
        sampler.add_probe("rss", lambda s: run.process.rss_pages)
        with capture("sample") as sink:
            sim.run_until_finished(run)
        names = {e.name for e in sink.events()}
        assert names == {"sample.rss"}
        probes = {e.args["probe"] for e in sink.events()}
        assert probes == {"rss"}


# ---------------------------------------------------------------------- #
# Export: summarize + Chrome trace
# ---------------------------------------------------------------------- #

class TestExport:
    def _trace_events(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 64))
        run.start_measurement()
        sampler = sim.add_sampler(PeriodicSampler(sim, every_turns=1))
        sampler.add_probe("rss", lambda s: run.process.rss_pages)
        with capture() as sink:
            sim.run_until_finished(run)
        return sink.events()

    def test_chrome_export_shape(self):
        events = self._trace_events()
        document = to_chrome(events)
        assert document["traceEvents"]
        phases = {entry["ph"] for entry in document["traceEvents"]}
        assert "X" in phases  # cycle-bearing slices (faults, walks)
        assert "C" in phases  # sampler counter tracks
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 1 for e in slices)
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert all(set(e["args"]) == {"value"} for e in counters)
        json.dumps(document)  # must be serialisable as-is

    def test_summarize_digest(self):
        events = self._trace_events()
        summary = summarize(events)
        assert summary["events"] == len(events)
        assert summary["by_category"]["fault"] > 0
        assert summary["by_tracepoint"]["fault.enter"] > 0
        assert "rss" in summary["series"]
        assert summary["series"]["rss"]["final"] == 64

    def test_jsonl_chrome_round_trip_through_cli(self, tmp_path, capsys):
        trace_path = tmp_path / "out.trace.jsonl"
        sim_events = self._trace_events()
        with JsonlSink(trace_path) as sink:
            for event in sim_events:
                sink.write(event)
        chrome_path = tmp_path / "out.trace.json"
        assert (
            obs_main(
                ["export", str(trace_path), "-o", str(chrome_path)]
            )
            == 0
        )
        document = json.loads(chrome_path.read_text())
        assert len(document["traceEvents"]) == len(sim_events)
        assert obs_main(["summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "events by tracepoint" in out

    def test_cli_catalog_lists_instrumented_tracepoints(self, capsys):
        assert obs_main(["catalog"]) == 0
        out = capsys.readouterr().out
        for name in ("buddy.split", "fault.enter", "walk.exit", "tlb.miss"):
            assert name in out

    def test_cli_catalog_is_sorted_and_stable(self, capsys):
        assert obs_main(["catalog"]) == 0
        first = capsys.readouterr().out
        names = [
            line.split()[0]
            for line in first.splitlines()
            if "." in line.split()[0]
        ]
        assert names == sorted(names)
        assert obs_main(["catalog"]) == 0
        assert capsys.readouterr().out == first


# ---------------------------------------------------------------------- #
# The zero-overhead guarantee: disabled tracing changes nothing
# ---------------------------------------------------------------------- #

class TestDisabledTracingIsInert:
    def test_counters_identical_with_and_without_tracing(self):
        def measured_counters(trace: bool):
            TRACER.reset()
            sim = make_sim()
            run = sim.add_workload(ScriptedWorkload.touch_region("t", 128))
            run.start_measurement()
            if trace:
                with capture():
                    sim.run_until_finished(run)
            else:
                sim.run_until_finished(run)
            run.finalize_measurement()
            return run.counters

        baseline = measured_counters(trace=False)
        traced = measured_counters(trace=True)
        untraced = measured_counters(trace=False)
        # Tracing must observe, never perturb: every counter byte-equal.
        assert untraced == baseline
        assert traced == baseline

    def test_disabled_run_leaves_clock_untouched(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 16))
        sim.run_until_finished(run)
        assert TRACER.now == 0
        assert not TRACER.active
