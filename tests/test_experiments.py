"""Tests for the experiment harness layer (fast paths only).

The full experiment sweeps live under ``benchmarks/``; these tests check
the harness mechanics (measurement windows, pairing, geomean, rendering)
on small scenarios so the unit suite stays quick.
"""

import pytest

from repro.config import GuestConfig, HostConfig, PlatformConfig
from repro.experiments.common import (
    compare_kernels,
    geometric_mean,
    run_colocated,
)
from repro.experiments.sec62 import StrideEighthWorkload, run_adversarial_sec62
from repro.experiments.sec64 import TouchOnceWorkload, run_sec64
from repro.metrics.counters import PerfCounters
from repro.units import MB


@pytest.fixture(scope="module")
def small_platform():
    return PlatformConfig(
        host=HostConfig(memory_bytes=128 * MB),
        guest=GuestConfig(memory_bytes=64 * MB),
    )


class TestGeometricMean:
    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_identity(self):
        assert geometric_mean([5.0, 5.0]) == pytest.approx(5.0)

    def test_mixed(self):
        value = geometric_mean([0.0, 10.0])
        assert 4.0 < value < 5.0  # sqrt(1.1) - 1 = 4.88%

    def test_matches_speedup_definition(self):
        # +100% and -50% are reciprocal speedups -> geomean 0%.
        assert geometric_mean([100.0, -50.0]) == pytest.approx(0.0)


class TestRunColocated:
    def test_isolated_run_produces_counters(self, small_platform):
        outcome = run_colocated(
            small_platform, "leela", corunners=(), prechurn_turns=0
        )
        counters = outcome.benchmark.counters
        assert counters.accesses > 0
        assert counters.cycles > 0
        assert outcome.benchmark.name == "leela"

    def test_corunner_stops_at_compute(self, small_platform):
        outcome = run_colocated(
            small_platform,
            "leela",
            corunners=[("pyaes", 1)],
            stop_corunners_at_compute=True,
            prechurn_turns=50,
        )
        sim = outcome.simulation
        co_run = next(
            run for run in sim.runs if run.workload.name == "pyaes"
        )
        assert co_run.finished  # stopped

    def test_paired_comparison_is_seed_stable(self, small_platform):
        a = compare_kernels(small_platform, "leela", (), seed=1)
        b = compare_kernels(small_platform, "leela", (), seed=1)
        assert a.improvement_percent == pytest.approx(b.improvement_percent)

    def test_metric_change_sign_matches_improvement(self, small_platform):
        comparison = compare_kernels(small_platform, "leela", (), seed=0)
        change = comparison.metric_change("cycles")
        # cycles falling (negative change) <=> positive improvement.
        if comparison.improvement_percent > 0:
            assert change < 0
        elif comparison.improvement_percent < 0:
            assert change > 0

    def test_metric_change_unknown_metric_raises(self, small_platform):
        comparison = compare_kernels(small_platform, "leela", (), seed=0)
        with pytest.raises(AttributeError):
            comparison.metric_change("nonexistent_metric")


class TestSec62Adversary:
    def test_stride_workload_shape(self):
        workload = StrideEighthWorkload(npages=64)
        ops = list(workload.ops())
        from repro.workloads.base import AccessOp

        touched = [op.page for op in ops if isinstance(op, AccessOp)]
        assert touched == [0, 8, 16, 24, 32, 40, 48, 56]

    def test_adversarial_ratio_near_seven(self, small_platform):
        ratio = run_adversarial_sec62(small_platform)
        assert 6.0 <= ratio <= 7.0


class TestSec64:
    def test_touch_once_terminates(self):
        ops = list(TouchOnceWorkload(npages=10).ops())
        from repro.workloads.base import AccessOp

        assert sum(1 for op in ops if isinstance(op, AccessOp)) == 10

    def test_ptemagnet_not_slower(self, small_platform):
        result = run_sec64(small_platform, npages=3000)
        assert result.ptemagnet_cycles <= result.default_cycles
