"""Figure 5 (§6.1): host-PT fragmentation with and without PTEMagnet.

Each benchmark runs colocated with objdet (the highest-fault-rate
co-runner) under both kernels; the y-value is the §3.2 fragmentation
metric -- average hPTE cache blocks per gPTE cache block. The paper shows
PTEMagnet pinning the metric at ~1 for every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..config import PlatformConfig
from ..metrics.report import Table
from ..workloads.registry import BENCHMARKS
from .common import compare_kernels

#: objdet gets moderate extra weight: it is an 8-thread co-runner.
OBJDET_WEIGHT = 3


@dataclass
class Figure5Result:
    """Fragmentation per benchmark under both kernels."""

    #: benchmark -> (default fragmentation, PTEMagnet fragmentation)
    fragmentation: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def ptemagnet_values(self) -> List[float]:
        return [after for _, after in self.fragmentation.values()]

    def default_values(self) -> List[float]:
        return [before for before, _ in self.fragmentation.values()]


def run_figure5(
    platform: PlatformConfig = None,
    benchmarks: Sequence[str] = tuple(BENCHMARKS),
    seed: int = 0,
) -> Figure5Result:
    """Measure host-PT fragmentation for every benchmark + objdet."""
    platform = platform or PlatformConfig()
    result = Figure5Result()
    for name in benchmarks:
        comparison = compare_kernels(
            platform, name, corunners=[("objdet", OBJDET_WEIGHT)], seed=seed
        )
        result.fragmentation[name] = (
            comparison.default.benchmark.counters.host_pt_fragmentation,
            comparison.ptemagnet.benchmark.counters.host_pt_fragmentation,
        )
    return result


def render_figure5(result: Figure5Result) -> str:
    """Paper-style rendering of Figure 5 (lower is better)."""
    table = Table(
        ["Benchmark", "Default kernel", "PTEMagnet"],
        title="Figure 5: host PT fragmentation in colocation with objdet",
    )
    for name, (before, after) in result.fragmentation.items():
        table.add_row(name, f"{before:.2f}", f"{after:.2f}")
    return table.render()
