"""Physical-memory substrate: frame bookkeeping and the buddy allocator.

This package models the part of a Linux kernel that PTEMagnet interacts
with: a flat array of physical page frames (:mod:`repro.mem.physical`)
managed by a binary buddy allocator (:mod:`repro.mem.buddy`), plus
fragmentation statistics (:mod:`repro.mem.stats`).
"""

from .buddy import BuddyAllocator, BuddyStats
from .physical import FrameState, PhysicalMemory
from .stats import free_list_histogram, unusable_free_index

__all__ = [
    "BuddyAllocator",
    "BuddyStats",
    "FrameState",
    "PhysicalMemory",
    "free_list_histogram",
    "unusable_free_index",
]
