"""Measurement: perf-style counters, the host-PT fragmentation metric,
the named-metric registry/snapshot layer, and report formatting used by
the experiment harnesses.

Import :mod:`repro.metrics.collect` (or call its collectors) to register
the canonical metric schema into :data:`REGISTRY`.
"""

from .counters import MetricDelta, PerfCounters, percent_change
from .fragmentation import (
    fragmented_group_fraction,
    group_block_counts,
    host_pt_fragmentation,
)
from .registry import (
    METRIC_NAME_RE,
    REGISTRY,
    MetricKind,
    MetricsRegistry,
    MetricsSnapshot,
    MetricSpec,
    load_snapshot,
    write_snapshots,
)
from .report import Table, format_percent, render_series

__all__ = [
    "METRIC_NAME_RE",
    "REGISTRY",
    "MetricDelta",
    "MetricKind",
    "MetricSpec",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PerfCounters",
    "Table",
    "format_percent",
    "fragmented_group_fraction",
    "group_block_counts",
    "host_pt_fragmentation",
    "load_snapshot",
    "percent_change",
    "render_series",
    "write_snapshots",
]
