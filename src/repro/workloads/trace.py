"""Workload traces: save and replay memory-operation streams.

The paper's benchmarks are real binaries whose memory behaviour we model
statistically. For users who *do* have a memory trace (from a pin tool,
a sampled profiler, or another simulator), this module defines a simple
JSON-lines interchange format and a workload that replays it:

    one JSON object per line, e.g.
    {"op": "mmap",   "region": "heap", "npages": 4096}
    {"op": "access", "region": "heap", "page": 17, "block": 3, "write": true}
    {"op": "free",   "region": "heap"}
    {"op": "phase",  "phase": "compute"}

`save_trace` writes any op iterable in this format (useful for freezing
one of the bundled statistical workloads into a shareable artifact), and
`TraceWorkload` streams a file back into the simulator without
materialising it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from ..errors import WorkloadError
from .base import (
    CHUNK_SIZE,
    AccessOp,
    BrkOp,
    FreeOp,
    MemoryOp,
    MmapOp,
    OpChunk,
    PhaseOp,
    Workload,
    WorkloadPhase,
    pack_chunk,
)


def op_to_record(op: MemoryOp) -> dict:
    """Serialize one op to its JSON record."""
    if isinstance(op, MmapOp):
        return {"op": "mmap", "region": op.region, "npages": op.npages}
    if isinstance(op, BrkOp):
        return {"op": "brk", "region": op.region, "grow_pages": op.grow_pages}
    if isinstance(op, AccessOp):
        return {
            "op": "access",
            "region": op.region,
            "page": op.page,
            "block": op.block,
            "write": op.write,
        }
    if isinstance(op, FreeOp):
        return {
            "op": "free",
            "region": op.region,
            "start_page": op.start_page,
            "npages": op.npages,
        }
    if isinstance(op, PhaseOp):
        return {"op": "phase", "phase": op.phase.value}
    raise WorkloadError(f"cannot serialize op {op!r}")


def record_to_op(record: dict) -> MemoryOp:
    """Deserialize one JSON record to its op."""
    kind = record.get("op")
    if kind == "mmap":
        return MmapOp(record["region"], int(record["npages"]))
    if kind == "brk":
        return BrkOp(record["region"], int(record["grow_pages"]))
    if kind == "access":
        return AccessOp(
            record["region"],
            int(record["page"]),
            int(record.get("block", 0)),
            bool(record.get("write", False)),
        )
    if kind == "free":
        return FreeOp(
            record["region"],
            int(record.get("start_page", 0)),
            int(record.get("npages", 0)),
        )
    if kind == "phase":
        return PhaseOp(WorkloadPhase(record["phase"]))
    raise WorkloadError(f"unknown trace record {record!r}")


def save_trace(path: Union[str, Path], ops: Iterable[MemoryOp]) -> int:
    """Write an op stream as JSON lines; returns the number of ops."""
    count = 0
    with open(path, "w") as handle:
        for op in ops:
            handle.write(json.dumps(op_to_record(op)) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> Iterator[MemoryOp]:
    """Stream ops back from a JSON-lines trace file."""
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(
                    f"{path}:{line_number}: invalid JSON ({exc})"
                ) from exc
            yield record_to_op(record)


class TraceWorkload(Workload):
    """Replay a JSON-lines trace file as a workload.

    The file is streamed, not materialised, so arbitrarily long traces
    replay in constant memory. ``footprint_pages`` defaults to the sum of
    mmap/brk sizes discovered by a quick pre-scan (pass it explicitly to
    skip the scan for huge files).
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: str = None,
        footprint_pages: int = None,
        seed: int = 0,
    ) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise WorkloadError(f"trace file not found: {self.path}")
        super().__init__(name or self.path.stem, seed)
        if footprint_pages is None:
            footprint_pages = sum(
                op.npages if isinstance(op, MmapOp) else op.grow_pages
                for op in load_trace(self.path)
                if isinstance(op, (MmapOp, BrkOp))
            )
        self._footprint = footprint_pages

    @property
    def footprint_pages(self) -> int:
        return self._footprint

    def ops(self) -> Iterator[MemoryOp]:
        return load_trace(self.path)

    def ops_batched(self) -> Iterator[OpChunk]:
        # Native packer: access records go straight from parsed JSON into
        # the chunk arrays, skipping the per-record AccessOp that ops()
        # constructs. Parse errors surface identically to load_trace.
        regions: List[str] = []
        intern_index: Dict[str, int] = {}
        ridx: List[int] = []
        pages: List[int] = []
        blocks: List[int] = []
        writes: List[bool] = []
        with open(self.path) as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise WorkloadError(
                        f"{self.path}:{line_number}: invalid JSON ({exc})"
                    ) from exc
                if record.get("op") == "access":
                    region = record["region"]
                    idx = intern_index.get(region)
                    if idx is None:
                        idx = intern_index[region] = len(regions)
                        regions.append(region)
                    ridx.append(idx)
                    pages.append(int(record["page"]))
                    blocks.append(int(record.get("block", 0)) & 63)
                    writes.append(bool(record.get("write", False)))
                    if len(pages) >= CHUNK_SIZE:
                        yield pack_chunk(
                            tuple(regions), ridx, pages, blocks, writes
                        )
                        ridx, pages, blocks, writes = [], [], [], []
                    continue
                yield pack_chunk(
                    tuple(regions),
                    ridx,
                    pages,
                    blocks,
                    writes,
                    record_to_op(record),
                )
                ridx, pages, blocks, writes = [], [], [], []
        if pages:
            yield pack_chunk(tuple(regions), ridx, pages, blocks, writes)
