"""Bounded log2-bucketed histogram for latency-style samples.

Replaces the unbounded per-fault latency lists: memory is a fixed 65
buckets no matter how many samples arrive, and percentiles come from
bucket midpoints (nearest-rank over the cumulative counts), which is the
standard resolution/size trade-off of kernel latency histograms (e.g.
BPF's ``hist()``). Exact ``count``, ``total``, ``min`` and ``max`` are
tracked alongside, so means and extremes stay precise.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Log2Histogram:
    """Histogram of non-negative integers with power-of-two buckets.

    Bucket 0 holds the value 0; bucket ``b >= 1`` holds values in
    ``[2**(b-1), 2**b - 1]`` (i.e. values with bit length ``b``).
    """

    #: Bucket count: values up to ``2**64 - 1`` land in distinct buckets;
    #: anything larger clamps into the last one.
    NUM_BUCKETS = 65

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * self.NUM_BUCKETS
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, value: int) -> None:
        """Add one sample (non-negative integer)."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        bucket = value.bit_length()
        if bucket >= self.NUM_BUCKETS:
            bucket = self.NUM_BUCKETS - 1
        self.buckets[bucket] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Log2Histogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        for bucket, n in enumerate(other.buckets):
            self.buckets[bucket] += n
        self.count += other.count
        self.total += other.total
        for bound in (other.min,):
            if bound is not None and (self.min is None or bound < self.min):
                self.min = bound
        for bound in (other.max,):
            if bound is not None and (self.max is None or bound > self.max):
                self.max = bound

    def delta(self, earlier: "Log2Histogram") -> "Log2Histogram":
        """Samples recorded since the ``earlier`` snapshot.

        Bucket-wise subtraction; ``earlier`` must be a prefix of this
        histogram's history. The delta's ``min``/``max`` are bucket
        bounds (the exact extremes of just the window are not recoverable
        from snapshots).
        """
        out = Log2Histogram()
        for bucket in range(self.NUM_BUCKETS):
            diff = self.buckets[bucket] - earlier.buckets[bucket]
            if diff < 0:
                raise ValueError("delta against a non-prefix snapshot")
            out.buckets[bucket] = diff
        out.count = self.count - earlier.count
        out.total = self.total - earlier.total
        nonzero = [b for b, n in enumerate(out.buckets) if n]
        if nonzero:
            out.min = self.bucket_low(nonzero[0])
            out.max = self.bucket_high(nonzero[-1])
        return out

    def snapshot(self) -> "Log2Histogram":
        """An independent copy (for before/after windows)."""
        out = Log2Histogram()
        out.buckets = list(self.buckets)
        out.count = self.count
        out.total = self.total
        out.min = self.min
        out.max = self.max
        return out

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @staticmethod
    def bucket_low(bucket: int) -> int:
        """Smallest value landing in ``bucket``."""
        return 0 if bucket == 0 else 1 << (bucket - 1)

    @staticmethod
    def bucket_high(bucket: int) -> int:
        """Largest value landing in ``bucket``."""
        return 0 if bucket == 0 else (1 << bucket) - 1

    @classmethod
    def bucket_midpoint(cls, bucket: int) -> float:
        """Representative value reported for ``bucket``."""
        return (cls.bucket_low(bucket) + cls.bucket_high(bucket)) / 2.0

    @property
    def mean(self) -> float:
        """Exact mean of all recorded samples."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile, resolved to the bucket midpoint.

        Matches the nearest-rank convention of
        :func:`repro.metrics.counters.percentile` -- same rank selection,
        bucket-midpoint resolution.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = min(self.count - 1, max(0, int(fraction * self.count)))
        cumulative = 0
        for bucket, n in enumerate(self.buckets):
            cumulative += n
            if rank < cumulative:
                return self.bucket_midpoint(bucket)
        raise AssertionError  # pragma: no cover - counts always add up

    def nonzero_buckets(self) -> Dict[int, int]:
        """Mapping bucket index -> count, for non-empty buckets only."""
        return {b: n for b, n in enumerate(self.buckets) if n}

    # ------------------------------------------------------------------ #
    # Serialization / comparison
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": self.nonzero_buckets(),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Log2Histogram":
        out = cls()
        for bucket, n in sorted(dict(payload.get("buckets") or {}).items()):
            out.buckets[int(bucket)] = int(n)
        out.count = int(payload.get("count") or 0)
        out.total = int(payload.get("total") or 0)
        out.min = payload.get("min")
        out.max = payload.get("max")
        return out

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Log2Histogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:
        return (
            f"Log2Histogram(count={self.count}, mean={self.mean:.1f}, "
            f"min={self.min}, max={self.max})"
        )
