"""``repro.lint``: simulator-aware static analysis for this repository.

Run from the command line::

    python -m repro.lint src/ --format text
    python -m repro.lint src/ --format json

or from Python::

    from repro.lint import lint_paths
    findings = lint_paths(["src"])

The rule set encodes the correctness properties the reproduction's
figures depend on -- deterministic replay, integer-exact address
arithmetic, ``repro.units`` discipline, API hygiene. A tier-1 test keeps
``src/`` at zero findings. See ``docs/internals.md`` for the rule list
and the suppression pragma (``# simlint: disable=RULE``).
"""

from .core import (
    JSON_SCHEMA_VERSION,
    RULE_ALIASES,
    RULES,
    UNITS_SCOPED_DIRS,
    Finding,
    LintContext,
    ProgramRule,
    Rule,
    canonical_rule_name,
    collect_files,
    iter_rules,
    lint_file,
    lint_paths,
    lint_source,
    register,
    register_alias,
)
from .effects import LATTICE_EFFECTS, EffectAnalysis, classify_call, widens
from .flow import Space, compatible, space_of_name
from . import rules  # noqa: F401  (imported for rule registration)
from .rules.hotpath import HOT_ROOTS, HotRoot, hot_cone

__all__ = [
    "EffectAnalysis",
    "HOT_ROOTS",
    "HotRoot",
    "LATTICE_EFFECTS",
    "JSON_SCHEMA_VERSION",
    "RULE_ALIASES",
    "RULES",
    "Space",
    "compatible",
    "space_of_name",
    "UNITS_SCOPED_DIRS",
    "Finding",
    "LintContext",
    "ProgramRule",
    "Rule",
    "canonical_rule_name",
    "classify_call",
    "collect_files",
    "hot_cone",
    "iter_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "register_alias",
    "widens",
]
