"""Differential run analysis: compare two metrics snapshots.

Powers ``python -m repro.obs diff a.json b.json`` -- the Table-1-style
"baseline vs colocated" / "default vs PTEMagnet" comparison as a
one-liner. Given two :class:`~repro.metrics.registry.MetricsSnapshot`
documents it reports

* per-metric deltas with the existing
  :class:`~repro.metrics.counters.MetricDelta` formatting (histograms
  flatten to ``.count`` / ``.mean`` / ``.p99`` scalars),
* metrics present on only one side ("appeared" / "removed"),
* the cycle-attribution trees ranked by absolute cycle delta
  (:func:`~repro.obs.profile.rank_delta`) when both snapshots embed one,
* and a regression verdict: the largest finite percent change is compared
  against a configurable threshold, giving CI a perf gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from .profile import ProfileNode, rank_delta

if TYPE_CHECKING:  # pragma: no cover - typing only; the runtime import
    # lives inside diff_snapshots() to keep repro.obs importable while
    # repro.metrics is still initializing (metrics -> obs.histogram ->
    # obs.__init__ -> obs.diff would otherwise cycle).
    from ..metrics.counters import MetricDelta
    from ..metrics.registry import MetricsSnapshot


@dataclass
class SnapshotDiff:
    """Everything one snapshot comparison produced."""

    label_before: str
    label_after: str
    #: One delta per metric present on both sides, sorted by absolute
    #: percent change (largest first), ties by name.
    deltas: List[MetricDelta] = field(default_factory=list)
    #: Metric names present only in the after / only in the before side.
    appeared: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    #: Attribution-tree ranking (see :func:`rank_delta`); empty when
    #: either snapshot has no embedded profile.
    profile_ranking: List[Dict[str, object]] = field(default_factory=list)

    def max_change_percent(self) -> float:
        """Largest finite absolute percent change across all deltas.

        Metrics that appear from zero have an infinite percent change;
        they are reported separately and excluded here so a generous
        threshold gate is not tripped by a counter waking up.
        """
        changes = [
            abs(delta.change_percent)
            for delta in self.deltas
            if math.isfinite(delta.change_percent)
        ]
        return max(changes, default=0.0)

    def breaches(self, threshold_percent: float) -> List[MetricDelta]:
        """Deltas whose finite percent change exceeds the threshold."""
        return [
            delta
            for delta in self.deltas
            if math.isfinite(delta.change_percent)
            and abs(delta.change_percent) > threshold_percent
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "before": self.label_before,
            "after": self.label_after,
            "metrics": [
                {
                    "name": delta.name,
                    "before": delta.before,
                    "after": delta.after,
                    "change_percent": (
                        delta.change_percent
                        if math.isfinite(delta.change_percent)
                        else None
                    ),
                }
                for delta in self.deltas
            ],
            "appeared": self.appeared,
            "removed": self.removed,
            "profile": self.profile_ranking,
        }


def diff_snapshots(
    before: "MetricsSnapshot", after: "MetricsSnapshot"
) -> SnapshotDiff:
    """Compare two snapshots metric by metric (and profile by profile)."""
    from ..metrics.counters import MetricDelta

    before_values = dict(before.scalar_items())
    after_values = dict(after.scalar_items())
    diff = SnapshotDiff(
        label_before=before.label or "before",
        label_after=after.label or "after",
    )
    for name in sorted(set(before_values) | set(after_values)):
        if name not in after_values:
            diff.removed.append(name)
        elif name not in before_values:
            diff.appeared.append(name)
        else:
            diff.deltas.append(
                MetricDelta(name, before_values[name], after_values[name])
            )
    diff.deltas.sort(
        key=lambda delta: (-abs(delta.change_percent), delta.name)
    )
    if before.profile is not None and after.profile is not None:
        diff.profile_ranking = rank_delta(before.profile, after.profile)
    return diff


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def render_diff(
    diff: SnapshotDiff,
    top: int = 0,
    profile_top: int = 15,
    show_unchanged: bool = False,
) -> str:
    """Human-readable rendering of a :class:`SnapshotDiff`.

    ``top`` limits the metric rows shown (0 = all changed metrics);
    ``profile_top`` limits the attribution-ranking rows. Unchanged
    metrics are summarized by count unless ``show_unchanged``.
    """
    lines = [f"diff: {diff.label_before} -> {diff.label_after}"]
    changed = [delta for delta in diff.deltas if delta.change_percent != 0.0]
    unchanged = len(diff.deltas) - len(changed)
    shown = changed if not top else changed[:top]
    for delta in shown:
        before = _format_value(delta.before)
        after = _format_value(delta.after)
        if math.isfinite(delta.change_percent):
            lines.append(f"  {delta.formatted()}  ({before} -> {after})")
        else:
            lines.append(f"  {delta.name}: new activity  (0 -> {after})")
    if top and len(changed) > top:
        lines.append(f"  ... {len(changed) - top} more changed metrics")
    if show_unchanged:
        for delta in diff.deltas:
            if delta.change_percent == 0.0:
                lines.append(
                    f"  {delta.name}: +0%  ({_format_value(delta.before)})"
                )
    elif unchanged:
        lines.append(f"  ({unchanged} metrics unchanged)")
    for name in diff.appeared:
        lines.append(f"  + {name} (only in {diff.label_after})")
    for name in diff.removed:
        lines.append(f"  - {name} (only in {diff.label_before})")
    if diff.profile_ranking:
        lines.append("attribution (by |cycle delta|):")
        rows = [
            row
            for row in diff.profile_ranking
            if row["delta_cycles"] or row["delta_count"]
        ]
        for row in rows[:profile_top]:
            if row["delta_cycles"]:
                sign = "+" if row["delta_cycles"] >= 0 else ""
                lines.append(
                    f"  {row['path']}: {sign}{row['delta_cycles']} cycles "
                    f"({row['before_cycles']} -> {row['after_cycles']})"
                )
            else:
                sign = "+" if row["delta_count"] >= 0 else ""
                lines.append(
                    f"  {row['path']}: {sign}{row['delta_count']} events "
                    f"({row['before_count']} -> {row['after_count']})"
                )
        if len(rows) > profile_top:
            lines.append(f"  ... {len(rows) - profile_top} more paths")
    return "\n".join(lines)


def category_totals(profile: Optional[ProfileNode]) -> Dict[str, int]:
    """Subtree cycle totals of the tree's top-level categories."""
    if profile is None:
        return {}
    return {
        name: profile.children[name].total_cycles()
        for name in sorted(profile.children)
    }
