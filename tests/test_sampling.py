"""Tests for the turn sampler."""

import pytest

from repro import PlatformConfig, Simulation
from repro.config import GuestConfig, HostConfig
from repro.sim.sampling import TimeSeries, TurnSampler
from repro.units import MB
from repro.workloads import ScriptedWorkload


def make_sim():
    return Simulation(
        PlatformConfig(
            host=HostConfig(memory_bytes=64 * MB),
            guest=GuestConfig(memory_bytes=32 * MB),
        )
    )


class TestTimeSeries:
    def test_empty(self):
        series = TimeSeries("x")
        assert series.peak == 0.0
        assert series.final == 0.0
        assert series.values() == []

    def test_peak_and_final(self):
        series = TimeSeries("x", [(0, 1.0), (50, 5.0), (100, 2.0)])
        assert series.peak == 5.0
        assert series.final == 2.0


class TestTurnSampler:
    def test_cadence_validation(self):
        with pytest.raises(ValueError):
            TurnSampler(make_sim(), every=0)

    def test_samples_on_cadence(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 400))
        sampler = TurnSampler(sim, every=2)
        sampler.add_probe("rss", lambda s: run.process.rss_pages)
        sampler.run_until(lambda: run.finished)
        series = sampler.series["rss"]
        assert len(series.points) > 2
        assert series.final == 400
        # RSS grows monotonically for a touch-once workload.
        values = series.values()
        assert values == sorted(values)

    def test_multiple_probes(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 64))
        sampler = TurnSampler(sim, every=1)
        sampler.add_probe("free", lambda s: s.kernel.free_fraction)
        sampler.add_probe("turns", lambda s: s.turns)
        sampler.run_until(lambda: run.finished)
        assert len(sampler.series) == 2
        assert sampler.series["free"].final < 1.0

    def test_final_sample_always_taken(self):
        sim = make_sim()
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 8))
        sampler = TurnSampler(sim, every=10_000)
        sampler.add_probe("rss", lambda s: run.process.rss_pages)
        sampler.run_until(lambda: run.finished)
        assert sampler.series["rss"].final == 8
