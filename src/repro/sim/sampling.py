"""Time-series sampling of simulation state.

A :class:`TurnSampler` wraps a :class:`~repro.sim.engine.Simulation` and
records configurable probes every N scheduler turns -- the simulator's
equivalent of the paper's "measured every second" methodology (§6.2).
Probes are plain callables over the simulation, so any quantity can be
tracked: free memory, per-process RSS, reservation occupancy, the
fragmentation metric, cache hit rates, ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from .engine import Simulation

#: A probe reads one number from the simulation.
Probe = Callable[[Simulation], float]


@dataclass
class TimeSeries:
    """Samples of one probe: (turn, value) pairs."""

    name: str
    points: List[Tuple[int, float]] = field(default_factory=list)

    def values(self) -> List[float]:
        return [value for _turn, value in self.points]

    @property
    def peak(self) -> float:
        return max(self.values()) if self.points else 0.0

    @property
    def final(self) -> float:
        return self.points[-1][1] if self.points else 0.0


class TurnSampler:
    """Runs a simulation while sampling probes on a fixed turn cadence.

    Example::

        sampler = TurnSampler(sim, every=50)
        sampler.add_probe("free", lambda s: s.kernel.free_fraction)
        sampler.add_probe(
            "rss", lambda s: run.process.rss_pages
        )
        sampler.run_until(lambda: run.finished)
        print(sampler.series["free"].peak)
    """

    def __init__(self, simulation: Simulation, every: int = 50) -> None:
        if every <= 0:
            raise ValueError("sampling cadence must be positive")
        self.simulation = simulation
        self.every = every
        self.series: Dict[str, TimeSeries] = {}

    def add_probe(self, name: str, probe: Probe) -> None:
        """Register a named probe (overwrites an existing name)."""
        self.series[name] = TimeSeries(name)
        self._probes = getattr(self, "_probes", {})
        self._probes[name] = probe

    def sample(self) -> None:
        """Take one sample of every probe right now."""
        turn = self.simulation.turns
        for name, probe in getattr(self, "_probes", {}).items():
            self.series[name].points.append((turn, probe(self.simulation)))

    def run_until(
        self, done: Callable[[], bool], max_turns: int = 1_000_000
    ) -> None:
        """Advance the simulation until ``done()``; sample on cadence.

        A final sample is always taken at the stop point.
        """
        for _ in range(max_turns):
            if done():
                break
            self.simulation.turn()
            if self.simulation.turns % self.every == 0:
                self.sample()
        self.sample()
