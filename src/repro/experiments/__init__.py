"""Experiment harnesses: one module per table/figure of the evaluation.

Each module exposes a ``run_*`` function returning a structured result and
a ``render_*`` function producing the paper-style text table/series. The
benchmark suite under ``benchmarks/`` calls these and checks the
qualitative reproduction targets listed in DESIGN.md.
"""

from .baselines import BaselineResult, render_baselines, run_baselines
from .common import (
    ColocationOutcome,
    KernelComparison,
    compare_kernels,
    run_colocated,
)
from .figure5 import render_figure5, run_figure5
from .figure6 import render_figure6, run_figure6
from .figure7 import FIGURE7_CORUNNERS, render_figure7, run_figure7
from .sec62 import render_sec62, run_adversarial_sec62, run_sec62
from .sensitivity import (
    SensitivityResult,
    render_sensitivity,
    sweep_dram_latency,
    sweep_llc,
)
from .sec64 import render_sec64, run_sec64
from .table1 import render_table1, run_table1
from .table4 import render_table4, run_table4

__all__ = [
    "BaselineResult",
    "ColocationOutcome",
    "FIGURE7_CORUNNERS",
    "KernelComparison",
    "SensitivityResult",
    "compare_kernels",
    "render_baselines",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_sec62",
    "render_sensitivity",
    "render_sec64",
    "render_table1",
    "render_table4",
    "run_adversarial_sec62",
    "run_baselines",
    "run_colocated",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_sec62",
    "sweep_dram_latency",
    "sweep_llc",
    "run_sec64",
    "run_table1",
    "run_table4",
]
