"""Trace conversion and summarisation.

``to_chrome`` converts recorded events into the Chrome ``trace_event``
JSON format (the ``traceEvents`` array form), loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* events carrying a ``cycles`` field become complete slices (``"X"``)
  with that duration, so page walks and fault handlers render as spans
  on the modelled-cycle timeline;
* ``sample.*`` events become counter tracks (``"C"``), so the sampler's
  fragmentation / occupancy series plot directly;
* everything else becomes an instant event (``"i"``).

Timestamps are modelled cycles, mapped 1:1 onto the format's
microsecond field -- absolute units do not matter for inspection, only
relative placement does.

``summarize`` produces the per-tracepoint counts and sampler series
digest behind ``python -m repro.obs summarize``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .trace import TraceEvent

#: Per-process track when the event does not say which pid it concerns.
DEFAULT_PID = 0

#: Synthetic event a merged multi-worker trace carries once per cell
#: (emitted by :func:`repro.obs.remote.merge_capsules`); exported as
#: Chrome ``process_name`` metadata so each worker's track shows its
#: cell label in Perfetto.
WORKER_TRACK_EVENT = "capsule.track"


def to_chrome(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Convert events to a Chrome ``trace_event`` JSON object.

    Merged multi-worker traces route each event to a per-worker track:
    an integer ``worker`` argument (the cell's submission index) becomes
    pid/tid, and :data:`WORKER_TRACK_EVENT` events become process-name
    metadata, so Perfetto shows one labelled lane per cell with sampler
    counters split per worker.
    """
    trace_events: List[Dict[str, object]] = []
    for event in events:
        args = dict(event.args)
        worker = args.get("worker")
        if not isinstance(worker, int) or isinstance(worker, bool):
            worker = None
        pid = args.get("pid", DEFAULT_PID)
        if not isinstance(pid, int):
            pid = DEFAULT_PID
        if worker is not None:
            pid = worker
        if event.name == WORKER_TRACK_EVENT and worker is not None:
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": worker,
                    "tid": worker,
                    "args": {"name": str(args.get("label", worker))},
                }
            )
            continue
        entry: Dict[str, object] = {
            "name": event.name,
            "cat": event.category,
            "pid": pid,
            "tid": pid,
            "ts": event.ts,
            "args": args,
        }
        cycles = args.get("cycles")
        if event.category == "sample":
            value = args.get("value")
            counter_pid = DEFAULT_PID if worker is None else worker
            entry["ph"] = "C"
            entry["pid"] = counter_pid
            entry["tid"] = counter_pid
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                entry["args"] = {"value": value}
            else:  # non-numeric sample payloads stay inspectable
                entry["ph"] = "i"
                entry["s"] = "g"
        elif isinstance(cycles, int) and not isinstance(cycles, bool):
            entry["ph"] = "X"
            entry["dur"] = max(cycles, 1)
        else:
            entry["ph"] = "i"
            entry["s"] = "g"
        trace_events.append(entry)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "modelled cycles", "source": "repro.obs"},
    }


def summarize(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Digest a trace: event counts, cycle span, sampler series stats."""
    counts: Dict[str, int] = {}
    categories: Dict[str, int] = {}
    series: Dict[str, List[float]] = {}
    first_ts = None
    last_ts = 0
    last_turn = 0
    total = 0
    for event in events:
        total += 1
        counts[event.name] = counts.get(event.name, 0) + 1
        categories[event.category] = categories.get(event.category, 0) + 1
        if first_ts is None:
            first_ts = event.ts
        last_ts = event.ts
        last_turn = max(last_turn, event.turn)
        if event.category == "sample":
            value = event.args.get("value")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                name = str(event.args.get("probe", event.name))
                series.setdefault(name, []).append(value)
    series_stats = {
        name: {
            "samples": len(values),
            "min": min(values),
            "max": max(values),
            "final": values[-1],
        }
        for name, values in sorted(series.items())
    }
    return {
        "events": total,
        "cycle_span": (last_ts - first_ts) if first_ts is not None else 0,
        "final_turn": last_turn,
        "by_category": dict(sorted(categories.items())),
        "by_tracepoint": dict(sorted(counts.items())),
        "series": series_stats,
    }


def render_summary(summary: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`summarize`'s digest."""
    lines = [
        f"events: {summary['events']}  "
        f"(modelled-cycle span: {summary['cycle_span']}, "
        f"final turn: {summary['final_turn']})",
        "",
        "events by tracepoint:",
    ]
    by_tracepoint: Dict[str, int] = summary["by_tracepoint"]  # type: ignore[assignment]
    width = max((len(name) for name in by_tracepoint), default=0)
    for name, count in sorted(by_tracepoint.items()):
        lines.append(f"  {name.ljust(width)}  {count}")
    series: Dict[str, Dict[str, object]] = summary["series"]  # type: ignore[assignment]
    if series:
        lines.append("")
        lines.append("sampled series (min / max / final):")
        swidth = max(len(name) for name in series)
        for name, stats in sorted(series.items()):
            lines.append(
                f"  {name.ljust(swidth)}  {stats['samples']:>5} samples   "
                f"{stats['min']:g} / {stats['max']:g} / {stats['final']:g}"
            )
    return "\n".join(lines)
