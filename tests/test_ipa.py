"""Tests for the whole-program analysis layer (``repro.lint.ipa``).

Covers: call-graph construction edge cases (method resolution through
bases, decorated functions, lambdas and closures, dynamic-dispatch
fallback-to-unknown, registry dicts), summary fixed-point convergence on
a recursive cycle, one end-to-end fixture per program-rule family
(positive finding + clean counterpart), the ``fastpath-invalidation``
alias, ``--jobs`` output equality, and the zero-findings enforcement for
the new rules over the real ``src/`` tree.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint import (
    RULE_ALIASES,
    RULES,
    lint_paths,
    lint_source,
)
from repro.lint.cli import main as lint_main
from repro.lint.ipa import Program, Summaries, extract_facts
from repro.lint.ipa.callgraph import function_id

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: The rule families introduced by the whole-program pass.
PROGRAM_RULES = {
    "mirror-coherence",
    "ipa-address-flow",
    "snapshot-determinism",
    "spawn-safety",
}


def facts_of(source: str, path: str = "src/repro/mod.py"):
    return extract_facts(path, ast.parse(source))


def build_program(modules):
    """``{"a": source, ...}`` -> Program with modules ``repro.a``, ..."""
    return Program(
        [
            facts_of(text, f"src/repro/{name}.py")
            for name, text in sorted(modules.items())
        ]
    )


def fid(module: str, qualname: str) -> str:
    return function_id(f"repro.{module}", qualname)


def edge_targets(program: Program, caller: str):
    out = set()
    for _, targets in program.edges.get(caller, ()):
        out.update(targets)
    return out


def rules_hit(source: str, path: str = "snippet.py"):
    return [finding.rule for finding in lint_source(source, path=path)]


# ---------------------------------------------------------------------- #
# Call-graph construction
# ---------------------------------------------------------------------- #

def test_callgraph_resolves_module_functions_and_imports():
    program = build_program(
        {
            "a": "def helper(x):\n    return x\n",
            "b": (
                "from repro.a import helper\n"
                "def caller(y):\n"
                "    return helper(y)\n"
            ),
        }
    )
    assert edge_targets(program, fid("b", "caller")) == {fid("a", "helper")}


def test_callgraph_resolves_self_dispatch_through_bases():
    program = build_program(
        {
            "mod": (
                "class Base:\n"
                "    def shoot(self):\n"
                "        pass\n"
                "class Child(Base):\n"
                "    def go(self):\n"
                "        self.shoot()\n"
            )
        }
    )
    assert edge_targets(program, fid("mod", "Child.go")) == {
        fid("mod", "Base.shoot")
    }


def test_callgraph_resolves_decorated_functions():
    program = build_program(
        {
            "mod": (
                "def deco(fn):\n"
                "    return fn\n"
                "@deco\n"
                "def helper():\n"
                "    return 1\n"
                "def caller():\n"
                "    helper()\n"
            )
        }
    )
    assert fid("mod", "helper") in edge_targets(program, fid("mod", "caller"))


def test_callgraph_resolves_closures_and_lambdas():
    program = build_program(
        {
            "mod": (
                "double = lambda x: helper(x)\n"
                "def helper(x):\n"
                "    return x * 2\n"
                "def outer():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner() + double(2)\n"
            )
        }
    )
    targets = edge_targets(program, fid("mod", "outer"))
    assert fid("mod", "outer.<locals>.inner") in targets
    assert fid("mod", "double") in targets
    # The lambda's own body is a scope too: it calls helper.
    assert edge_targets(program, fid("mod", "double")) == {
        fid("mod", "helper")
    }


def test_callgraph_dynamic_dispatch_falls_back_to_unknown():
    program = build_program(
        {
            "mod": (
                "def poke(obj):\n"
                "    obj.whatever()\n"
                "    (obj.a or obj.b).method()\n"
            )
        }
    )
    assert edge_targets(program, fid("mod", "poke")) == set()


def test_callgraph_resolves_registry_dispatch():
    program = build_program(
        {
            "mod": (
                "def _run_a():\n"
                "    return 'a'\n"
                "def _run_b():\n"
                "    return 'b'\n"
                "TABLE = {'a': _run_a, 'b': _run_b}\n"
                "def dispatch(name):\n"
                "    return TABLE[name]()\n"
            )
        }
    )
    assert edge_targets(program, fid("mod", "dispatch")) == {
        fid("mod", "_run_a"),
        fid("mod", "_run_b"),
    }


def test_callgraph_resolves_receiver_types_from_annotations():
    program = build_program(
        {
            "mod": (
                "class Kernel:\n"
                "    def tick(self):\n"
                "        pass\n"
                "def drive(kernel: Kernel):\n"
                "    kernel.tick()\n"
            )
        }
    )
    assert edge_targets(program, fid("mod", "drive")) == {
        fid("mod", "Kernel.tick")
    }


# ---------------------------------------------------------------------- #
# Summary fixed points
# ---------------------------------------------------------------------- #

def test_fixed_point_converges_on_recursive_cycle():
    program = build_program(
        {
            "mod": (
                "def get_gva(x):\n"
                "    gva = x\n"
                "    return gva\n"
                "def a(n):\n"
                "    if n:\n"
                "        return b(n - 1)\n"
                "    return get_gva(n)\n"
                "def b(n):\n"
                "    return a(n)\n"
            )
        }
    )
    summaries = Summaries(program)
    # a <-> b is a cycle; both must converge to get_gva's GVA.
    assert summaries.return_spaces[fid("mod", "a")] == "GVA"
    assert summaries.return_spaces[fid("mod", "b")] == "GVA"
    # Reachability through the cycle includes both ends (and self).
    reach_a = summaries.reachable[fid("mod", "a")]
    assert {fid("mod", "a"), fid("mod", "b"), fid("mod", "get_gva")} <= reach_a


def test_param_demand_propagates_through_forwarding():
    program = build_program(
        {
            "mod": (
                "def sink(hpa):\n"
                "    return hpa\n"
                "def mid(value):\n"
                "    return sink(value)\n"
            )
        }
    )
    summaries = Summaries(program)
    assert summaries.param_demands[fid("mod", "mid")] == ("HPA",)
    chain = summaries.demand_chain(fid("mod", "mid"), 0)
    assert chain[-1] == (fid("mod", "sink"), 0)


# ---------------------------------------------------------------------- #
# mirror-coherence: the interprocedural demo the old rule missed
# ---------------------------------------------------------------------- #

#: A guest-PT mutation delegated to a helper that takes the table as an
#: opaque parameter. The retired per-function ``fastpath-invalidation``
#: rule keyed on the receiver being *named* ``page_table``, so the
#: helper was invisible to it -- and the caller contains no mutator call
#: at all. Only the call-graph view connects the two.
DELEGATED_MUTATION = (
    "class Kernel:\n"
    "    def _drop(self, pt, vpn):\n"
    "        pt.unmap(vpn)\n"
    "    def free_page(self, process, vpn):\n"
    "        self._drop(process.page_table, vpn)\n"
)


def test_interprocedural_demo_flagged_at_the_binding_site():
    findings = lint_source(DELEGATED_MUTATION, path="snippet.py")
    assert [finding.rule for finding in findings] == ["mirror-coherence"]
    # Anchored at the caller's binding site (line 5), which a
    # per-function pass cannot produce: free_page() has no mutator call.
    assert findings[0].line == 5
    assert "_drop" in findings[0].message


def test_interprocedural_demo_helper_alone_passes_per_function_view():
    # The helper in isolation is what the old rule saw -- and it is
    # clean: mutating a bare parameter defers the obligation to callers.
    helper_only = (
        "class Kernel:\n"
        "    def _drop(self, pt, vpn):\n"
        "        pt.unmap(vpn)\n"
    )
    assert rules_hit(helper_only) == []


def test_interprocedural_demo_clean_when_caller_reaches_shootdown():
    src = (
        "class Kernel:\n"
        "    def _drop(self, pt, vpn):\n"
        "        pt.unmap(vpn)\n"
        "    def free_page(self, process, vpn):\n"
        "        self._drop(process.page_table, vpn)\n"
        "        self._notify_unmap(process.pid, vpn)\n"
    )
    assert rules_hit(src) == []


def test_mirror_coherence_clean_when_helper_pairs_the_shootdown():
    # Pairing inside the helper satisfies every caller transitively.
    src = (
        "class Kernel:\n"
        "    def _drop(self, process, vpn):\n"
        "        process.page_table.unmap(vpn)\n"
        "        self._notify_unmap(process.pid, vpn)\n"
        "    def free_page(self, process, vpn):\n"
        "        self._drop(process, vpn)\n"
    )
    assert rules_hit(src) == []


def test_mirror_coherence_host_side_binding_is_exempt():
    src = (
        "class Hypervisor:\n"
        "    def _drop(self, pt, page):\n"
        "        pt.unmap(page)\n"
        "    def unback(self, vm, page):\n"
        "        self._drop(vm.host_pt, page)\n"
    )
    assert rules_hit(src) == []


# ---------------------------------------------------------------------- #
# ipa-address-flow
# ---------------------------------------------------------------------- #

def test_ipa_address_flow_catches_gva_two_calls_deep():
    src = (
        "def sink(hpa):\n"
        "    return hpa\n"
        "def mid(value):\n"
        "    return sink(value)\n"
        "def top(process):\n"
        "    gva = process.base\n"
        "    return mid(gva)\n"
    )
    findings = lint_source(src, path="snippet.py")
    assert [finding.rule for finding in findings] == ["ipa-address-flow"]
    assert findings[0].line == 7
    assert "2 calls deep" in findings[0].message


def test_ipa_address_flow_clean_when_spaces_agree():
    src = (
        "def sink(hpa):\n"
        "    return hpa\n"
        "def mid(value):\n"
        "    return sink(value)\n"
        "def top(frame):\n"
        "    hpa = frame << 12\n"
        "    return mid(hpa)\n"
    )
    assert "ipa-address-flow" not in rules_hit(src)


# ---------------------------------------------------------------------- #
# snapshot-determinism
# ---------------------------------------------------------------------- #

def test_snapshot_determinism_flags_unsorted_helper_under_to_dict():
    src = (
        "class Stats:\n"
        "    def to_dict(self):\n"
        "        return render(self.data)\n"
        "def render(data):\n"
        "    out = {}\n"
        "    for key, value in data.items():\n"
        "        out[key] = value\n"
        "    return out\n"
    )
    findings = lint_source(src, path="snippet.py")
    assert [finding.rule for finding in findings] == ["snapshot-determinism"]
    assert findings[0].line == 6
    assert "to_dict" in findings[0].message


def test_snapshot_determinism_clean_when_sorted_or_off_path():
    sorted_src = (
        "class Stats:\n"
        "    def to_dict(self):\n"
        "        return render(self.data)\n"
        "def render(data):\n"
        "    return {key: value for key, value in sorted(data.items())}\n"
    )
    assert rules_hit(sorted_src) == []
    # The same unsorted loop with no serializer reaching it is fine.
    off_path = (
        "def tally(data):\n"
        "    out = {}\n"
        "    for key, value in data.items():\n"
        "        out[key] = value\n"
        "    return out\n"
    )
    assert rules_hit(off_path) == []


# ---------------------------------------------------------------------- #
# spawn-safety
# ---------------------------------------------------------------------- #

def test_spawn_safety_flags_worker_reachable_global_mutation():
    src = (
        "RESULTS = {}\n"
        "def run_cell(experiment, seed):\n"
        "    record(experiment, seed)\n"
        "def record(experiment, seed):\n"
        "    RESULTS[experiment] = seed\n"
    )
    findings = lint_source(src, path="snippet.py")
    assert [finding.rule for finding in findings] == ["spawn-safety"]
    assert findings[0].line == 5
    assert "RESULTS" in findings[0].message


def test_spawn_safety_clean_for_returns_and_safe_singletons():
    by_value = (
        "def run_cell(experiment, seed):\n"
        "    return {experiment: seed}\n"
    )
    assert rules_hit(by_value) == []
    # Documented per-process singletons are exempt.
    profiler = (
        "PROFILER = Accumulator()\n"
        "def run_cell(experiment, seed):\n"
        "    PROFILER.add(experiment, seed)\n"
    )
    assert rules_hit(profiler) == []
    # The same mutation not reachable from a worker entry is fine.
    offline = (
        "RESULTS = {}\n"
        "def record(experiment, seed):\n"
        "    RESULTS[experiment] = seed\n"
    )
    assert rules_hit(offline) == []


# ---------------------------------------------------------------------- #
# fastpath-invalidation alias
# ---------------------------------------------------------------------- #

UNPAIRED = (
    "def do_free(process, vpn):\n"
    "    frame = process.page_table.unmap(vpn)\n"
    "    return frame\n"
)


def test_alias_registered_and_not_a_rule():
    assert RULE_ALIASES["fastpath-invalidation"] == "mirror-coherence"
    assert "fastpath-invalidation" not in RULES


def test_alias_pragma_still_suppresses():
    src = (
        "def do_free(process, vpn):\n"
        "    return process.page_table.unmap(vpn)  "
        "# simlint: disable=fastpath-invalidation (legacy pragma)\n"
    )
    assert rules_hit(src) == []
    assert rules_hit(UNPAIRED) == ["mirror-coherence"]


def test_alias_disable_still_works():
    assert (
        lint_source(UNPAIRED, disabled=["fastpath-invalidation"]) == []
    )


def test_alias_accepted_by_cli_disable(tmp_path, capsys):
    target = tmp_path / "snippet.py"
    target.write_text(UNPAIRED, encoding="utf-8")
    assert (
        lint_main([str(target), "--disable", "fastpath-invalidation"]) == 0
    )
    assert lint_main([str(target)]) == 1
    capsys.readouterr()


# ---------------------------------------------------------------------- #
# --jobs: parallel per-file phase, identical output
# ---------------------------------------------------------------------- #

def test_jobs_output_matches_serial(tmp_path):
    (tmp_path / "a.py").write_text(UNPAIRED, encoding="utf-8")
    (tmp_path / "b.py").write_text(
        "import random\n"
        "def g():\n"
        "    return random.random()\n",
        encoding="utf-8",
    )
    serial = lint_paths([tmp_path], jobs=1)
    parallel = lint_paths([tmp_path], jobs=3)
    assert serial == parallel
    assert sorted({finding.rule for finding in serial}) == [
        "global-random",
        "mirror-coherence",
    ]


def test_jobs_cli_flag(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("def f(x):\n    return x\n", encoding="utf-8")
    assert lint_main([str(target), "--jobs", "2"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        lint_main([str(target), "--jobs", "0"])
    capsys.readouterr()


# ---------------------------------------------------------------------- #
# Enforcement: the real tree stays clean under the new rules
# ---------------------------------------------------------------------- #

def test_src_tree_has_zero_program_rule_findings():
    findings = [
        finding
        for finding in lint_paths([SRC])
        if finding.rule in PROGRAM_RULES
    ]
    assert findings == [], "\n".join(f.render() for f in findings)
