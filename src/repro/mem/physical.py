"""Flat physical-memory model: an array of page frames with ownership tags.

A :class:`PhysicalMemory` instance represents the RAM of one machine (host
or guest). It does not store data -- the simulator only cares about *which*
frames back *which* pages -- but it does track, per frame, whether the frame
is free, who owns it, and what it is used for. That bookkeeping is what
lets the fragmentation metrics and the PTEMagnet reclamation daemon reason
about the state of memory.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional

from ..errors import InvalidAddressError
from ..units import PAGE_SIZE


class FrameState(enum.Enum):
    """What a physical frame is currently used for."""

    FREE = "free"
    #: Mapped into some process' address space (anonymous/user data).
    USER = "user"
    #: Holds a page-table node.
    PAGE_TABLE = "page_table"
    #: Taken from the buddy allocator by PTEMagnet but not yet mapped.
    RESERVED = "reserved"
    #: Kernel-internal use other than page tables.
    KERNEL = "kernel"


class PhysicalMemory:
    """Bookkeeping for the physical frames of one machine.

    Parameters
    ----------
    num_frames:
        Total number of 4KB frames.
    name:
        Human-readable tag used in error messages (``"host"`` / ``"guest"``).
    """

    def __init__(self, num_frames: int, name: str = "ram") -> None:
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.name = name
        self.num_frames = num_frames
        self._state: Dict[int, FrameState] = {}
        self._owner: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.num_frames * PAGE_SIZE

    def check_frame(self, frame: int) -> None:
        """Raise :class:`InvalidAddressError` unless ``frame`` is in range."""
        if not 0 <= frame < self.num_frames:
            raise InvalidAddressError(
                f"{self.name}: frame {frame} outside [0, {self.num_frames})"
            )

    def state_of(self, frame: int) -> FrameState:
        """Return the current :class:`FrameState` of ``frame``."""
        self.check_frame(frame)
        return self._state.get(frame, FrameState.FREE)

    def owner_of(self, frame: int) -> Optional[int]:
        """Return the owner id of ``frame``, or ``None`` if unowned."""
        self.check_frame(frame)
        return self._owner.get(frame)

    def is_free(self, frame: int) -> bool:
        """True if ``frame`` is not in use."""
        return self.state_of(frame) is FrameState.FREE

    def frames_in_state(self, state: FrameState) -> Iterator[int]:
        """Yield every frame currently in ``state`` (sparse scan)."""
        if state is FrameState.FREE:
            for frame in range(self.num_frames):
                if self._state.get(frame, FrameState.FREE) is FrameState.FREE:
                    yield frame
            return
        for frame, current in self._state.items():
            if current is state:
                yield frame

    def count_in_state(self, state: FrameState) -> int:
        """Number of frames currently in ``state``."""
        if state is FrameState.FREE:
            non_free = sum(
                1 for s in self._state.values() if s is not FrameState.FREE
            )
            return self.num_frames - non_free
        return sum(1 for s in self._state.values() if s is state)

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #

    def set_state(
        self, frame: int, state: FrameState, owner: Optional[int] = None
    ) -> None:
        """Set the state (and optionally the owner) of one frame."""
        self.check_frame(frame)
        if state is FrameState.FREE:
            self._state.pop(frame, None)
            self._owner.pop(frame, None)
            return
        self._state[frame] = state
        if owner is None:
            self._owner.pop(frame, None)
        else:
            self._owner[frame] = owner

    def set_range_state(
        self,
        base: int,
        count: int,
        state: FrameState,
        owner: Optional[int] = None,
    ) -> None:
        """Set the state of ``count`` contiguous frames starting at ``base``."""
        for frame in range(base, base + count):
            self.set_state(frame, state, owner)
