"""Tests for the results-analysis/report module."""

import json

import pytest

from repro.analysis.report import (
    load_results,
    main,
    render_markdown_report,
    verdicts,
)

GOOD_RESULTS = {
    "table1": {
        "Execution time": 4.4,
        "Page walk cycles": 55.6,
        "Host PT accesses served by memory": 110.0,
        "Guest PT accesses served by memory": 1.4,
    },
    "figure5": {
        "pagerank": {"default": 5.0, "ptemagnet": 1.0},
        "xz": {"default": 5.0, "ptemagnet": 1.0},
    },
    "figure6": {
        "improvements": {"pagerank": 3.4, "xz": 4.7},
        "low_pressure": {"leela": 0.6},
        "geomean": 4.0,
    },
    "figure7": {"improvements": {"pagerank": 6.8}, "geomean": 7.0},
    "sec62": {
        "peaks_percent": {"pagerank": 0.05},
        "adversarial_ratio": 7.0,
    },
    "sec64": {"change_percent": -1.2},
    "table4": {"Execution time": -3.4},
}


class TestVerdicts:
    def test_all_pass_on_good_results(self):
        graded = verdicts(GOOD_RESULTS)
        assert graded
        assert all(passed for _t, passed, _d in graded)

    def test_slowdown_fails_figure6(self):
        bad = json.loads(json.dumps(GOOD_RESULTS))
        bad["figure6"]["improvements"]["pagerank"] = -0.5
        graded = dict(
            (target, passed) for target, passed, _d in verdicts(bad)
        )
        assert not graded["Figure 6: no benchmark slowed down"]

    def test_unpinned_fragmentation_fails_figure5(self):
        bad = json.loads(json.dumps(GOOD_RESULTS))
        bad["figure5"]["pagerank"]["ptemagnet"] = 3.0
        graded = dict(
            (target, passed) for target, passed, _d in verdicts(bad)
        )
        assert not graded["Figure 5: PTEMagnet pins fragmentation at ~1"]

    def test_partial_results_grade_partially(self):
        graded = verdicts({"sec64": {"change_percent": -1.0}})
        assert len(graded) == 1

    def test_empty_results(self):
        assert verdicts({}) == []


class TestRendering:
    def test_report_contains_sections(self):
        report = render_markdown_report(GOOD_RESULTS)
        assert "# PTEMagnet reproduction report" in report
        assert "Figure 6" in report
        assert "geomean" in report
        assert "PASS" in report

    def test_report_on_empty(self):
        report = render_markdown_report({})
        assert report.startswith("# PTEMagnet reproduction report")


class TestCli:
    def test_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        path.write_text(json.dumps(GOOD_RESULTS))
        assert load_results(str(path)) == GOOD_RESULTS
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_usage_error(self, capsys):
        assert main([]) == 2
