"""Command-line interface of the ``simlint`` static-analysis pass.

Exit status: 0 when no findings, 1 when findings exist, 2 on usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional

from ..github import escape_data, escape_property, workflow_command
from .core import (
    JSON_SCHEMA_VERSION,
    RULE_ALIASES,
    iter_rules,
    lint_paths,
)

#: Kept under the historical private names: external tooling (and the
#: test suite) imports the escaping helpers from here; the shared
#: implementation lives in :mod:`repro.github`.
_escape_github_data = escape_data
_escape_github_property = escape_property


def _render_text(findings) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simlint: {len(findings)} {noun}")
    return "\n".join(lines)


def _render_json(findings) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "counts": dict(
            sorted(Counter(finding.rule for finding in findings).items())
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_github(findings) -> str:
    """GitHub Actions workflow commands: findings annotate the diff.

    Columns are 1-based for GitHub; :class:`Finding` stores 0-based
    ``ast`` column offsets.
    """
    lines = [
        workflow_command(
            "error",
            finding.message,
            file=finding.path,
            line=finding.line,
            col=finding.col + 1,
            title=f"simlint {finding.rule}",
        )
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simlint: {len(findings)} {noun}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Simulator-aware static analysis: determinism, units "
            "discipline, address-math safety and API hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text; 'github' emits workflow "
        "commands so CI annotates findings inline)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="RULES",
        help="comma-separated rule names to skip for this run",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-file phase out over N processes (the "
        "whole-program pass stays single-process; output is "
        "byte-identical at any job count)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.name:18} [{rule.category}] {rule.description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src/)")

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    disabled = {name.strip() for name in args.disable.split(",") if name.strip()}
    known = {rule.name for rule in iter_rules()} | set(RULE_ALIASES)
    unknown = disabled - known
    if unknown:
        parser.error(f"unknown rule(s) in --disable: {', '.join(sorted(unknown))}")

    try:
        findings = lint_paths(args.paths, disabled=disabled, jobs=args.jobs)
    except OSError as exc:
        parser.error(f"cannot lint {exc.filename or '?'}: {exc.strerror or exc}")
    if args.format == "json":
        print(_render_json(findings))
    elif args.format == "github":
        print(_render_github(findings))
    else:
        print(_render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
