"""Virtualization substrate: the host kernel and the nested (2D) walker.

The host kernel (:mod:`repro.virt.hypervisor`) treats a VM exactly as
Linux/KVM does -- as one process whose virtual address space *is* the
guest's physical address space, backed lazily page-by-page (§3.1). The
nested walker (:mod:`repro.virt.nested`) performs the 2D page walk of
§2.5: a guest walk in which every guest-PT access itself requires a host
walk, plus one final host walk for the data page -- up to 24 memory
accesses in total.
"""

from .hypervisor import HostKernel, VmHandle
from .nested import NestedWalkResult, NestedWalker

__all__ = ["HostKernel", "NestedWalkResult", "NestedWalker", "VmHandle"]
