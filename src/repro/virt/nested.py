"""Nested (two-dimensional) page walker.

Implements the 2D walk of §2.5: translating one guest virtual page
requires

* up to 4 accesses to guest-PT nodes, each of which lives in guest
  physical memory and therefore first needs its *own* host walk (up to 4
  host-PT accesses) to locate in host physical memory, and
* one final host walk to translate the resulting guest physical address,

for up to 4 x (4 + 1) + 4 = 24 serialized memory accesses. Guest and host
page-walk caches skip upper levels they have seen recently, and a small
nested TLB caches guest-frame -> host-frame translations for guest-PT
node pages, as real MMUs do. Every access flows through the shared cache
hierarchy tagged ``"gpt"`` or ``"hpt"`` so experiments can attribute
hit/miss behaviour per dimension -- the measurement at the heart of the
paper (gPT vs hPT accesses served by main memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cache.hierarchy import CacheHierarchy
from ..cache.pwc import PageWalkCache
from ..obs.profile import PROFILER
from ..obs.trace import tracepoint
from ..pagetable.radix import PageTable
from ..pagetable.walker import PageWalker
from ..units import PAGE_SHIFT, pte_address
from .hypervisor import HostKernel, VmHandle

#: Capacity of the nested TLB (gfn -> hfn for guest-PT node pages).
NESTED_TLB_ENTRIES = 64

_tp_walk_enter = tracepoint("walk.enter")
_tp_walk_step = tracepoint("walk.step")
_tp_walk_exit = tracepoint("walk.exit")


@dataclass
class NestedWalkResult:
    """Outcome of one 2D page walk."""

    #: Final host physical frame for the guest virtual page, or ``None``
    #: if the *guest* PT has no translation (guest page fault).
    host_frame: Optional[int]
    #: Guest physical frame, or ``None`` on guest fault.
    guest_frame: Optional[int]
    #: Total serialized walk latency in cycles.
    cycles: int
    #: Cycles spent on host-PT accesses only (paper: "cycles spent
    #: traversing the host page table").
    host_cycles: int
    #: Number of guest-PT entry accesses issued.
    guest_accesses: int
    #: Number of host-PT entry accesses issued.
    host_accesses: int

    @property
    def faulted(self) -> bool:
        """True if the guest PT had no translation (guest page fault)."""
        return self.host_frame is None


class NestedWalker:
    """Performs 2D walks for one guest process inside one VM.

    Parameters
    ----------
    guest_pt:
        The guest process' page table (guest virtual -> guest physical).
    vm:
        The VM handle holding the host PT (guest physical -> host physical).
    host:
        The host kernel, consulted to back guest frames on first touch.
    hierarchy:
        The shared cache hierarchy all PT accesses flow through.
    guest_pwc / host_pwc:
        Page-walk caches for the two dimensions.
    """

    def __init__(
        self,
        guest_pt: PageTable,
        vm: VmHandle,
        host: HostKernel,
        hierarchy: CacheHierarchy,
        guest_pwc: Optional[PageWalkCache] = None,
        host_pwc: Optional[PageWalkCache] = None,
    ) -> None:
        self.guest_pt = guest_pt
        self.vm = vm
        self.host = host
        self.hierarchy = hierarchy
        self.guest_pwc = guest_pwc
        self.host_pwc = host_pwc
        self._host_walker = PageWalker(
            vm.host_pt,
            memory_access=hierarchy.access,
            pwc=host_pwc,
            stream="hpt",
        )
        # Let profiled host-walk steps carry their serving cache level.
        self._host_walker.hierarchy = hierarchy
        # Nested TLB: gfn -> hfn, LRU via insertion order.
        self._ntlb: Dict[int, int] = {}
        self.ntlb_hits = 0
        self.ntlb_misses = 0
        self.walks = 0
        self.total_cycles = 0
        self.total_host_cycles = 0

    # ------------------------------------------------------------------ #
    # Host-dimension helpers
    # ------------------------------------------------------------------ #

    def _host_translate(self, gfn: int) -> Tuple[int, int, int]:
        """Translate guest frame ``gfn``; returns (hfn, cycles, accesses).

        Walks the host PT; on a host-PT hole (guest frame not yet backed)
        the host kernel backs it and the walk is re-issued, modelling the
        EPT-violation exit + resume.
        """
        result = self._host_walker.walk(gfn)
        if result.frame is None:
            self.host.ensure_backed(self.vm, gfn)
            retry = self._host_walker.walk(gfn)
            return (
                retry.frame,
                result.cycles + retry.cycles,
                result.accesses + retry.accesses,
            )
        return result.frame, result.cycles, result.accesses

    def _host_translate_node(self, gfn: int) -> Tuple[int, int, int]:
        """Host-translate a guest-PT *node* frame, using the nested TLB."""
        hfn = self._ntlb.get(gfn)
        if hfn is not None:
            del self._ntlb[gfn]
            self._ntlb[gfn] = hfn  # refresh LRU position
            self.ntlb_hits += 1
            return hfn, 0, 0
        self.ntlb_misses += 1
        hfn, cycles, accesses = self._host_translate(gfn)
        if len(self._ntlb) >= NESTED_TLB_ENTRIES:
            del self._ntlb[next(iter(self._ntlb))]
        self._ntlb[gfn] = hfn
        return hfn, cycles, accesses

    # ------------------------------------------------------------------ #
    # The 2D walk
    # ------------------------------------------------------------------ #

    def walk(self, gvpn: int) -> NestedWalkResult:
        """Translate guest virtual page ``gvpn`` end to end."""
        cycles = 0
        host_cycles = 0
        guest_accesses = 0
        host_accesses = 0

        path, leaf_pte = self.guest_pt.walk_path_and_pte(gvpn)
        start_depth = 0
        if self.guest_pwc is not None:
            hit = self.guest_pwc.lookup(gvpn)
            if hit is not None:
                hit_level, _frame = hit
                start_depth = min(self.guest_pt.levels - hit_level, len(path))
        if _tp_walk_enter.enabled:
            _tp_walk_enter.emit(vpn=gvpn, start_depth=start_depth)

        for level, node_frame, index in path[start_depth:]:
            # The gPTE lives at a guest-physical address; locate it in host
            # physical memory first (nested dimension).
            gpte_gpa = pte_address(node_frame, index)
            if PROFILER.enabled:
                self._host_walker.profile_context = (
                    "walk", "hpt", f"gl{level}",
                )
            hfn, walk_cycles, walk_accesses = self._host_translate_node(
                node_frame
            )
            cycles += walk_cycles
            host_cycles += walk_cycles
            host_accesses += walk_accesses
            # Then fetch the gPTE itself through the cache hierarchy.
            gpte_hpa = (hfn << PAGE_SHIFT) | (gpte_gpa & ((1 << PAGE_SHIFT) - 1))
            latency = self.hierarchy.access(gpte_hpa, "gpt")
            if PROFILER.enabled:
                PROFILER.add(
                    (
                        "walk",
                        "gpt",
                        f"gl{level}",
                        self.hierarchy.last_outcome.name.lower(),
                    ),
                    latency,
                )
            cycles += latency
            guest_accesses += 1
            if _tp_walk_step.enabled:
                _tp_walk_step.emit(
                    vpn=gvpn,
                    level=level,
                    cycles=latency + walk_cycles,
                    host_accesses=walk_accesses,
                )
            if self.guest_pwc is not None:
                self.guest_pwc.fill(gvpn, level, node_frame)

        guest_frame = None
        host_frame = None
        if leaf_pte is not None:
            guest_frame = leaf_pte >> PAGE_SHIFT
        if guest_frame is not None:
            # Final host walk: translate the data page's guest frame.
            if PROFILER.enabled:
                self._host_walker.profile_context = ("walk", "hpt", "leaf")
            host_frame, walk_cycles, walk_accesses = self._host_translate(
                guest_frame
            )
            cycles += walk_cycles
            host_cycles += walk_cycles
            host_accesses += walk_accesses

        self.walks += 1
        self.total_cycles += cycles
        self.total_host_cycles += host_cycles
        if _tp_walk_exit.enabled:
            _tp_walk_exit.emit(
                vpn=gvpn,
                cycles=cycles,
                host_cycles=host_cycles,
                guest_accesses=guest_accesses,
                host_accesses=host_accesses,
                faulted=host_frame is None,
            )
        return NestedWalkResult(
            host_frame=host_frame,
            guest_frame=guest_frame,
            cycles=cycles,
            host_cycles=host_cycles,
            guest_accesses=guest_accesses,
            host_accesses=host_accesses,
        )

    def flush_ntlb(self) -> None:
        """Drop all nested-TLB entries (host PT changed)."""
        self._ntlb.clear()
