"""Tests for the live run watch (``repro.obs.watch``).

The board is a pure state machine over manifest events, so every test
here drives it from canned JSONL -- no simulation, no subprocesses --
and the tail-follower runs with an injected sleep/clock.
"""

import io
import json

from repro.obs.histogram import Log2Histogram
from repro.obs.watch import (
    CLEAR_FRAME,
    STATE_CRASHED,
    STATE_FINISHED,
    STATE_QUEUED,
    STATE_RUNNING,
    CellView,
    WatchBoard,
    iter_manifest_events,
    snapshot_rollup,
    watch_manifest,
    write_frame,
)


def _histogram(values):
    histogram = Log2Histogram()
    for value in values:
        histogram.record(value)
    return histogram


def _snapshot_doc(metrics):
    """Raw snapshot-document shape: just the ``metrics`` mapping."""
    return {"metrics": metrics}


def _scalar(value):
    return {"value": value}


class TestSnapshotRollup:
    def test_sums_perf_counters_across_members(self):
        docs = {
            "a": _snapshot_doc(
                {"perf.cycles": _scalar(100), "perf.accesses": _scalar(10)}
            ),
            "b": _snapshot_doc(
                {"perf.cycles": _scalar(50), "perf.accesses": _scalar(5)}
            ),
        }
        rollup = snapshot_rollup(docs)
        assert rollup["cycles"] == 150
        assert rollup["accesses"] == 15
        assert "fault_latencies" not in rollup

    def test_prefers_perf_latencies_with_samples(self):
        docs = {
            "a": _snapshot_doc(
                {
                    "perf.fault_latencies": {
                        "value": _histogram([100, 200]).to_dict()
                    },
                    "kernel.fault_latencies": {
                        "value": _histogram([1]).to_dict()
                    },
                }
            )
        }
        rollup = snapshot_rollup(docs)
        merged = Log2Histogram.from_dict(rollup["fault_latencies"])
        assert merged.count == 2

    def test_falls_back_to_kernel_latencies(self):
        docs = {
            "a": _snapshot_doc(
                {
                    "perf.fault_latencies": {
                        "value": Log2Histogram().to_dict()
                    },
                    "kernel.fault_latencies": {
                        "value": _histogram([100, 200, 400]).to_dict()
                    },
                }
            )
        }
        rollup = snapshot_rollup(docs)
        merged = Log2Histogram.from_dict(rollup["fault_latencies"])
        assert merged.count == 3
        assert "cycles" not in rollup  # no perf counters were present

    def test_empty_snapshots_roll_up_to_nothing(self):
        assert snapshot_rollup({}) == {}
        assert snapshot_rollup({"a": _snapshot_doc({})}) == {}


def _manifest_events(crash=False):
    """A canned two-cell figure6-style manifest event stream."""
    latencies = _histogram([100, 200, 400, 800]).to_dict()
    events = [
        {
            "event": "run_start",
            "experiments": ["figure6"],
            "seeds": [0, 1],
            "jobs": 2,
            "capture": ["metrics"],
        },
        {"event": "submit", "experiment": "figure6", "seed": 0, "index": 0},
        {"event": "submit", "experiment": "figure6", "seed": 1, "index": 1},
        {
            "event": "start",
            "experiment": "figure6",
            "seed": 0,
            "pid": 1234,
            "wall_time": 10.0,
        },
        {
            "event": "finish",
            "experiment": "figure6",
            "seed": 0,
            "wall_seconds": 2.0,
            "modelled_cycles": 5_000_000,
            "trace_events": 42,
            "perf": {
                "cycles": 4_000_000,
                "accesses": 80_000,
                "fault_latencies": latencies,
            },
        },
        {
            "event": "start",
            "experiment": "figure6",
            "seed": 1,
            "pid": 1235,
            "wall_time": 12.0,
        },
    ]
    if crash:
        events.append(
            {
                "event": "crash",
                "experiment": "figure6",
                "seed": 1,
                "error": "boom",
            }
        )
        events.append({"event": "run_end", "status": "error"})
    else:
        events.append(
            {
                "event": "finish",
                "experiment": "figure6",
                "seed": 1,
                "wall_seconds": 1.0,
                "perf": {"cycles": 3_000_000, "accesses": 30_000},
            }
        )
        events.append({"event": "merge", "merged_events": 84})
        events.append({"event": "run_end", "status": "ok"})
    return events


def _write_manifest(path, events, partial_line=None):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
        if partial_line is not None:
            handle.write(partial_line)


class TestWatchBoard:
    def test_board_folds_the_event_stream(self):
        board = WatchBoard()
        for event in _manifest_events():
            board.apply(event)
        assert board.experiments == ["figure6"]
        assert board.seeds == [0, 1]
        assert board.jobs == 2
        assert board.status == "ok"
        assert board.merged_events == 84
        assert board.done
        counts = board.counts()
        assert counts[STATE_FINISHED] == 2
        assert counts[STATE_QUEUED] == counts[STATE_RUNNING] == 0
        first, second = board.cells
        assert first.label == "figure6[seed=0]"
        # The capsule clock wins over the perf roll-up cycles.
        assert first.modelled_cycles == 5_000_000
        assert first.accesses == 80_000
        assert first.ops_per_sec() == 40_000.0
        assert first.fault_p99 is not None and first.fault_p99 > 0
        # Without a capsule clock the roll-up supplies the cycles.
        assert second.modelled_cycles == 3_000_000

    def test_running_cell_uses_the_live_clock(self):
        board = WatchBoard()
        for event in _manifest_events()[:4]:  # through seed 0's start
            board.apply(event)
        cell, queued = board.cells
        assert queued.state == STATE_QUEUED
        assert cell.state == STATE_RUNNING
        assert cell.wall(now=13.0) == 3.0
        assert cell.wall() is None  # no clock, no elapsed column

    def test_crash_marks_the_cell_and_the_run(self):
        board = WatchBoard()
        for event in _manifest_events(crash=True):
            board.apply(event)
        assert board.status == "error"
        assert board.counts()[STATE_CRASHED] == 1
        crashed = board.cells[1]
        assert crashed.state == STATE_CRASHED
        assert crashed.error == "boom"

    def test_render_is_a_fixed_width_frame(self):
        board = WatchBoard()
        for event in _manifest_events():
            board.apply(event)
        frame = board.render()
        lines = frame.splitlines()
        assert lines[0] == "run figure6 seeds=0,1 jobs=2  [2/2 cells, ok]"
        assert lines[1].startswith("cell")
        assert "figure6[seed=0]" in lines[2]
        assert "5.0" in lines[2]  # Mcycles column
        assert "40.0k" in lines[2]  # ops/s column
        assert lines[-1] == (
            "queued 0 | running 0 | finished 2 | crashed 0 "
            "| merged events 84"
        )

    def test_render_before_any_event(self):
        frame = WatchBoard().render()
        assert frame.splitlines()[0] == "run  [0/0 cells]"


class TestIterManifestEvents:
    def test_no_follow_drains_and_stops(self, tmp_path):
        path = tmp_path / "run.manifest.jsonl"
        events = _manifest_events()
        _write_manifest(path, events)
        seen = list(iter_manifest_events(path, follow=False))
        assert len(seen) == len(events)
        assert seen[-1]["event"] == "run_end"

    def test_partial_line_is_not_consumed(self, tmp_path):
        path = tmp_path / "run.manifest.jsonl"
        events = _manifest_events()[:3]
        _write_manifest(
            path, events, partial_line='{"event": "sta'
        )
        seen = list(iter_manifest_events(path, follow=False))
        assert [e["event"] for e in seen] == [
            "run_start", "submit", "submit",
        ]

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.manifest.jsonl"
        path.write_text('not json\n{"event": "run_end", "status": "ok"}\n')
        seen = list(iter_manifest_events(path, follow=False))
        assert [e["event"] for e in seen] == ["run_end"]

    def test_follow_picks_up_appended_rows(self, tmp_path):
        path = tmp_path / "run.manifest.jsonl"
        events = _manifest_events()
        split = 4
        _write_manifest(path, events[:split])

        def fake_sleep(_interval):
            # The writer flushes the rest of the run between polls.
            _write_manifest(path, events)

        seen = list(
            iter_manifest_events(path, follow=True, sleep=fake_sleep)
        )
        assert len(seen) == len(events)
        assert seen[-1]["event"] == "run_end"

    def test_follow_waits_for_the_file_then_times_out(self, tmp_path):
        path = tmp_path / "never.jsonl"
        ticks = iter(range(100))

        seen = list(
            iter_manifest_events(
                path,
                follow=True,
                timeout=3.0,
                sleep=lambda _i: None,
                clock=lambda: float(next(ticks)),
            )
        )
        assert seen == []


class TestWatchManifest:
    def test_clean_run_exits_zero(self, tmp_path):
        path = tmp_path / "run.manifest.jsonl"
        _write_manifest(path, _manifest_events())
        stream = io.StringIO()
        assert watch_manifest(path, stream, follow=False) == 0
        output = stream.getvalue()
        # One frame per event, separated by blank lines (no ANSI off-TTY).
        assert CLEAR_FRAME not in output
        assert output.count("run figure6") == len(_manifest_events())
        assert "finished 2" in output

    def test_crashed_run_exits_nonzero(self, tmp_path):
        path = tmp_path / "run.manifest.jsonl"
        _write_manifest(path, _manifest_events(crash=True))
        stream = io.StringIO()
        assert watch_manifest(path, stream, follow=False) == 1
        assert "crashed 1" in stream.getvalue()

    def test_empty_manifest_renders_one_frame(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        stream = io.StringIO()
        assert watch_manifest(path, stream, follow=False) == 0
        assert "run  [0/0 cells]" in stream.getvalue()

    def test_ansi_frames_clear_the_screen(self, tmp_path):
        path = tmp_path / "run.manifest.jsonl"
        _write_manifest(path, _manifest_events())
        stream = io.StringIO()
        assert watch_manifest(path, stream, follow=False, ansi=True) == 0
        assert stream.getvalue().startswith(CLEAR_FRAME)

    def test_write_frame_modes(self):
        stream = io.StringIO()
        write_frame(stream, "frame", ansi=False)
        assert stream.getvalue() == "frame\n\n"
        stream = io.StringIO()
        write_frame(stream, "frame", ansi=True)
        assert stream.getvalue() == CLEAR_FRAME + "frame\n"

    def test_cli_no_follow(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_main

        path = tmp_path / "run.manifest.jsonl"
        _write_manifest(path, _manifest_events())
        assert obs_main(["watch", str(path), "--no-follow"]) == 0
        assert "finished 2" in capsys.readouterr().out
