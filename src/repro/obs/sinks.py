"""Trace sinks: where recorded events go.

Two bounded/streaming options cover the use cases:

* :class:`RingBufferSink` -- a fixed-capacity in-memory ring (ftrace's
  per-CPU buffers); the cheapest way to keep "the last N events" around
  a failure or inside a test.
* :class:`JsonlSink` -- streaming one-JSON-object-per-line writer, the
  interchange format the ``python -m repro.obs`` CLI consumes and the
  runner's ``--trace`` flag produces.

``read_trace`` loads a JSONL trace back into :class:`TraceEvent` objects
(round-trip tested).
"""

from __future__ import annotations

import io
import json
from collections import deque
from pathlib import Path
from typing import Deque, Iterator, List, Union

from ..errors import ReproError
from .trace import TraceEvent


class RingBufferSink:
    """Keep the most recent ``capacity`` events; count what was dropped."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_events = 0
        self.dropped_events = 0

    def write(self, event: TraceEvent) -> None:
        self.total_events += 1
        if len(self._events) == self.capacity:
            self.dropped_events += 1
        self._events.append(event)

    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.total_events = 0
        self.dropped_events = 0

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink:
    """Stream events to a JSONL file (one event object per line)."""

    def __init__(self, destination: Union[str, Path, io.TextIOBase]) -> None:
        if isinstance(destination, (str, Path)):
            self._handle = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self.events_written = 0

    def write(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._handle, sort_keys=True)
        self._handle.write("\n")
        self.events_written += 1

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def iter_trace(source: Union[str, Path, io.TextIOBase]) -> Iterator[TraceEvent]:
    """Yield events from a JSONL trace file or open text handle."""
    if isinstance(source, (str, Path)):
        handle = open(source, "r", encoding="utf-8")
        owns = True
    else:
        handle = source
        owns = False
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield TraceEvent.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError) as exc:
                raise ReproError(
                    f"malformed trace line {lineno}: {exc}"
                ) from exc
    finally:
        if owns:
            handle.close()


def read_trace(source: Union[str, Path, io.TextIOBase]) -> List[TraceEvent]:
    """Load a whole JSONL trace into memory."""
    return list(iter_trace(source))
