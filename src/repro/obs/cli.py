"""The ``python -m repro.obs`` command line: inspect, convert, compare.

::

    python -m repro.obs summarize out.trace.jsonl
    python -m repro.obs export out.trace.jsonl -o out.trace.json
    python -m repro.obs catalog
    python -m repro.obs metrics
    python -m repro.obs diff baseline.json current.json --threshold 25
    python -m repro.obs diff t1.json#standalone t1.json#colocated

``export`` writes a Chrome ``trace_event`` JSON loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``. ``catalog`` imports
the instrumented layers and lists every registered tracepoint;
``metrics`` lists the metric schema the same way. ``diff`` compares two
metrics-snapshot files (``--metrics-out`` / benchmark output; append
``#label`` to pick one snapshot from a multi-snapshot file) and exits
non-zero when ``--threshold`` is given and any metric moved by more than
that percentage -- the CI regression gate. ``diff --format github``
additionally prints one ``::error`` workflow-command annotation per
threshold breach, so the gate marks up PRs instead of only failing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .diff import diff_snapshots, render_diff
from .export import render_summary, summarize, to_chrome
from .sinks import iter_trace
from .trace import TRACER

#: Modules imported by ``catalog`` so their emit sites register.
INSTRUMENTED_MODULES = (
    "repro.cache.hierarchy",
    "repro.cache.pwc",
    "repro.core.allocator",
    "repro.core.part",
    "repro.core.reclaimer",
    "repro.mem.buddy",
    "repro.mem.pcp",
    "repro.os.kernel",
    "repro.sim.engine",
    "repro.tlb.tlb",
    "repro.virt.nested",
)


def _cmd_summarize(args: argparse.Namespace) -> int:
    summary = summarize(iter_trace(args.trace))
    if args.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_summary(summary))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    document = to_chrome(iter_trace(args.trace))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=args.indent)
        handle.write("\n")
    print(
        f"wrote {args.output} ({len(document['traceEvents'])} trace events); "
        "load it in https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    import importlib

    for module in INSTRUMENTED_MODULES:
        importlib.import_module(module)
    catalog = TRACER.catalog()
    width = max((len(name) for name in catalog), default=0)
    for name, enabled in catalog.items():
        state = "on" if enabled else "off"
        print(f"{name.ljust(width)}  [{state}]")
    print(f"{len(catalog)} tracepoints registered")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    # Importing the collectors registers the canonical metric schema.
    from ..metrics import collect  # noqa: F401
    from ..metrics.registry import REGISTRY

    catalog = REGISTRY.catalog()
    width = max((len(spec.name) for spec in catalog), default=0)
    for spec in catalog:
        unit = f" [{spec.unit}]" if spec.unit else ""
        print(f"{spec.name.ljust(width)}  {spec.kind.value:<9}{unit}  {spec.help}")
    print(f"{len(catalog)} metrics registered")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from ..github import workflow_command
    from ..metrics.registry import load_snapshot

    before = load_snapshot(args.before)
    after = load_snapshot(args.after)
    result = diff_snapshots(before, after)
    fmt = args.format or ("json" if args.json else "text")
    if fmt == "json":
        json.dump(result.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(
            render_diff(
                result,
                top=args.top,
                profile_top=args.profile_top,
                show_unchanged=args.all,
            )
        )
    if args.threshold is not None:
        breaches = result.breaches(args.threshold)
        if breaches:
            if fmt == "github":
                # One workflow-command annotation per breach, so the CI
                # perf gate marks up the PR instead of only failing.
                path = args.after.split("#", 1)[0]
                for delta in breaches:
                    print(
                        workflow_command(
                            "error",
                            f"{delta.formatted()} exceeds the "
                            f"{args.threshold:g}% perf gate "
                            f"({result.label_before} -> "
                            f"{result.label_after})",
                            file=path,
                            title="perf regression",
                        )
                    )
            print(
                f"REGRESSION: {len(breaches)} metric(s) moved more than "
                f"{args.threshold:g}% (worst: {breaches[0].formatted()})"
            )
            return 1
        print(f"ok: all changes within {args.threshold:g}%")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize and convert repro trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="digest a JSONL trace")
    p_sum.add_argument("trace", help="JSONL trace file (runner --trace output)")
    p_sum.add_argument(
        "--json", action="store_true", help="emit the digest as JSON"
    )
    p_sum.set_defaults(func=_cmd_summarize)

    p_exp = sub.add_parser(
        "export", help="convert a JSONL trace to Chrome/Perfetto JSON"
    )
    p_exp.add_argument("trace", help="JSONL trace file (runner --trace output)")
    p_exp.add_argument(
        "-o", "--output", required=True, help="Chrome trace JSON output path"
    )
    p_exp.add_argument(
        "--indent", type=int, default=None, help="pretty-print indentation"
    )
    p_exp.set_defaults(func=_cmd_export)

    p_cat = sub.add_parser("catalog", help="list registered tracepoints")
    p_cat.set_defaults(func=_cmd_catalog)

    p_met = sub.add_parser("metrics", help="list the metric schema")
    p_met.set_defaults(func=_cmd_metrics)

    p_diff = sub.add_parser(
        "diff", help="compare two metrics snapshots (a regression gate)"
    )
    p_diff.add_argument(
        "before", help="baseline snapshot JSON (append #label to pick one)"
    )
    p_diff.add_argument(
        "after", help="candidate snapshot JSON (append #label to pick one)"
    )
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero if any metric moves more than PCT percent",
    )
    p_diff.add_argument(
        "--top",
        type=int,
        default=0,
        help="show at most N changed metrics (0 = all)",
    )
    p_diff.add_argument(
        "--profile-top",
        type=int,
        default=15,
        help="show at most N attribution paths (default 15)",
    )
    p_diff.add_argument(
        "--all", action="store_true", help="also list unchanged metrics"
    )
    p_diff.add_argument(
        "--json", action="store_true", help="emit the diff as JSON "
        "(alias for --format json)"
    )
    p_diff.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default=None,
        help="output format; 'github' renders the text diff and emits "
        "one ::error workflow-command annotation per threshold breach",
    )
    p_diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)
