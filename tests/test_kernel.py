"""Tests for the guest kernel: fault paths, frees, process lifecycle."""

import pytest

from repro.config import GuestConfig, MachineConfig
from repro.errors import SegmentationFault, SimulationError
from repro.mem.physical import FrameState
from repro.os.fault import FaultKind
from repro.os.kernel import GuestKernel
from repro.units import MB, RESERVATION_PAGES


def make_kernel(ptemagnet=False, memory_mb=32, **kwargs):
    config = GuestConfig(
        memory_bytes=memory_mb * MB, ptemagnet_enabled=ptemagnet, **kwargs
    )
    return GuestKernel(config, MachineConfig())


class TestProcessLifecycle:
    def test_create_process(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        assert p.pid in kernel.processes
        assert p.part is None  # default kernel: no PaRT

    def test_ptemagnet_process_gets_part(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        assert p.part is not None

    def test_exit_releases_everything(self):
        kernel = make_kernel()
        free_at_boot = kernel.buddy.free_frames
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 100)
        for vpn in vma.pages():
            kernel.handle_fault(p, vpn)
        kernel.exit_process(p)
        assert kernel.buddy.free_frames == free_at_boot
        assert p.pid not in kernel.processes

    def test_exit_ptemagnet_process_releases_reservations(self):
        kernel = make_kernel(ptemagnet=True)
        free_at_boot = kernel.buddy.free_frames
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        kernel.handle_fault(p, vma.start_vpn)  # 1 mapped, 7 reserved
        kernel.exit_process(p)
        assert kernel.buddy.free_frames == free_at_boot

    def test_double_exit_raises(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        kernel.exit_process(p)
        with pytest.raises(SimulationError):
            kernel.exit_process(p)


class TestDefaultFaultPath:
    def test_fault_maps_one_page(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 10)
        outcome = kernel.handle_fault(p, vma.start_vpn)
        assert outcome.kind is FaultKind.DEFAULT
        assert p.page_table.translate(vma.start_vpn) == outcome.frame
        assert p.rss_pages == 1

    def test_fault_outside_vma_segfaults(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        with pytest.raises(SegmentationFault):
            kernel.handle_fault(p, 0xDEAD)

    def test_refault_is_spurious(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 1)
        first = kernel.handle_fault(p, vma.start_vpn)
        second = kernel.handle_fault(p, vma.start_vpn)
        assert second.kind is FaultKind.SPURIOUS
        assert second.frame == first.frame
        assert second.cycles == 0

    def test_fault_cycles_charged(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 1)
        outcome = kernel.handle_fault(p, vma.start_vpn)
        machine = kernel.machine
        assert outcome.cycles == (
            machine.page_fault_cycles + machine.buddy_call_cycles
        )


class TestPTEMagnetFaultPath:
    def test_first_fault_creates_reservation(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        outcome = kernel.handle_fault(p, vma.start_vpn)
        assert outcome.kind is FaultKind.RESERVATION_NEW
        assert len(p.part) == 1
        reservation = next(p.part.iter_reservations())
        assert reservation.mapped_count == 1
        assert reservation.unmapped_count == 7

    def test_group_faults_hit_reservation(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        base = vma.start_vpn - (vma.start_vpn % RESERVATION_PAGES)
        first = kernel.handle_fault(p, vma.start_vpn)
        # Remaining pages of the group are served from the reservation.
        hits = 0
        for vpn in range(base, base + RESERVATION_PAGES):
            if vpn == vma.start_vpn or not vma.contains(vpn):
                continue
            outcome = kernel.handle_fault(p, vpn)
            assert outcome.kind is FaultKind.RESERVATION_HIT
            hits += 1
        assert hits > 0

    def test_group_frames_are_contiguous(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, RESERVATION_PAGES * 2)
        # Use a group fully inside the VMA.
        base = ((vma.start_vpn // RESERVATION_PAGES) + 1) * RESERVATION_PAGES
        frames = [
            kernel.handle_fault(p, base + i).frame
            for i in range(RESERVATION_PAGES)
        ]
        assert frames == list(range(frames[0], frames[0] + RESERVATION_PAGES))
        assert frames[0] % RESERVATION_PAGES == 0

    def test_full_group_deletes_part_entry(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, RESERVATION_PAGES * 2)
        base = ((vma.start_vpn // RESERVATION_PAGES) + 1) * RESERVATION_PAGES
        for i in range(RESERVATION_PAGES):
            kernel.handle_fault(p, base + i)
        from repro.units import reservation_group

        assert p.part.lookup(reservation_group(base)) is None

    def test_reserved_frames_tagged(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        outcome = kernel.handle_fault(p, vma.start_vpn)
        reservation = next(p.part.iter_reservations())
        for frame in reservation.unmapped_frames():
            assert kernel.memory.state_of(frame) is FrameState.RESERVED
        assert kernel.memory.state_of(outcome.frame) is FrameState.USER

    def test_cgroup_gating(self):
        kernel = make_kernel(
            ptemagnet=True, ptemagnet_memory_limit_bytes=16 * MB
        )
        small = kernel.create_process("small", memory_limit_bytes=1 * MB)
        big = kernel.create_process("big", memory_limit_bytes=64 * MB)
        assert small.part is None
        assert big.part is not None
        # The gated-out process falls back to the default path.
        vma = kernel.mmap(small, 8)
        outcome = kernel.handle_fault(small, vma.start_vpn)
        assert outcome.kind is FaultKind.DEFAULT


class TestFree:
    def test_munmap_returns_frames(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 16)
        for vpn in vma.pages():
            kernel.handle_fault(p, vpn)
        free_before = kernel.buddy.free_frames
        released = kernel.munmap(p, vma.start_vpn, 16)
        assert released == 16
        assert kernel.buddy.free_frames > free_before
        assert p.rss_pages == 0

    def test_munmap_unfaulted_pages_release_nothing(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 16)
        assert kernel.munmap(p, vma.start_vpn, 16) == 0

    def test_free_all_of_group_deletes_reservation(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, RESERVATION_PAGES * 2)
        base = ((vma.start_vpn // RESERVATION_PAGES) + 1) * RESERVATION_PAGES
        kernel.handle_fault(p, base)
        free_before = kernel.buddy.free_frames
        kernel.munmap(p, base, 1)  # frees the only mapped page
        # Reservation deleted: all 8 frames returned (plus any PT node
        # frames pruned by the unmap).
        assert kernel.buddy.free_frames >= free_before + RESERVATION_PAGES
        assert len(p.part) == 0

    def test_partial_free_keeps_reservation(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, RESERVATION_PAGES * 2)
        base = ((vma.start_vpn // RESERVATION_PAGES) + 1) * RESERVATION_PAGES
        kernel.handle_fault(p, base)
        kernel.handle_fault(p, base + 1)
        kernel.munmap(p, base, 1)
        assert len(p.part) == 1
        reservation = next(p.part.iter_reservations())
        assert reservation.mapped_count == 1

    def test_refault_after_partial_free_reuses_reserved_frame(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, RESERVATION_PAGES * 2)
        base = ((vma.start_vpn // RESERVATION_PAGES) + 1) * RESERVATION_PAGES
        first = kernel.handle_fault(p, base)
        kernel.handle_fault(p, base + 1)
        kernel.munmap(p, base, 1)
        # A later fault elsewhere in the group is served from the same
        # reservation, preserving contiguity.
        refault = kernel.handle_fault(p, base + 2)
        assert refault.frame == first.frame + 2


class TestStats:
    def test_fault_kind_counters(self):
        kernel = make_kernel(ptemagnet=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, RESERVATION_PAGES * 2)
        base = ((vma.start_vpn // RESERVATION_PAGES) + 1) * RESERVATION_PAGES
        for i in range(RESERVATION_PAGES):
            kernel.handle_fault(p, base + i)
        assert kernel.stats.reservation_new_faults == 1
        assert kernel.stats.reservation_hit_faults == RESERVATION_PAGES - 1
        assert kernel.stats.faults == RESERVATION_PAGES
