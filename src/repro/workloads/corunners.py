"""Co-runner models (Table 3).

Co-runners are the applications sharing the VM with the measured
benchmark. Their defining property for this paper is their *allocation
behaviour*: how often they fault in and free pages, because interleaved
faults are what fragment guest physical memory. All co-runner streams are
infinite; the simulation engine runs them until the primary benchmark
finishes (or, per experiment methodology, stops them at a phase marker).

* ``stress-ng`` (§3.3's antagonist): 12 threads continuously allocating
  and freeing memory -- maximum churn.
* ``objdet`` (MLPerf SSD-MobileNet): the highest page-fault rate of the
  §6.1 co-runner set -- per-inference activation tensors are allocated,
  used and freed, against a persistent weight region.
* ``chameleon``, ``pyaes``, ``json_serdes``, ``rnn_serving``: lighter
  serverless-style co-runners from the paper's list (gcc and xz reuse the
  SPEC models in :mod:`repro.workloads.spec`).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from .base import AccessOp, FreeOp, MemoryOp, MmapOp, PhaseOp, Workload, WorkloadPhase
from .synth import sequential_touch, zipf_page_sequence


class CoRunner(Workload):
    """Base class for infinite co-runner streams."""

    @property
    def footprint_pages(self) -> int:
        return self.steady_footprint_pages

    #: Subclasses override: approximate steady-state resident pages.
    steady_footprint_pages = 0


class StressNg(CoRunner):
    """stress-ng memory churner: threads allocating and freeing nonstop.

    Parameters
    ----------
    threads:
        Modelled thread count (paper: 12); scales how many regions are in
        flight at once, i.e. how aggressively faults interleave.
    """

    steady_footprint_pages = 4000

    def __init__(self, seed: int = 0, threads: int = 12) -> None:
        super().__init__("stress-ng", seed)
        if threads <= 0:
            raise ValueError("threads must be positive")
        self.threads = threads

    def ops(self) -> Iterator[MemoryOp]:
        rng = self.rng()
        yield PhaseOp(WorkloadPhase.COMPUTE)
        live: list = []
        for round_id in itertools.count():
            region = f"churn-{round_id}"
            npages = rng.randrange(32, 512)
            yield MmapOp(region, npages)
            yield from sequential_touch(region, npages)
            live.append(region)
            # Keep roughly one region per thread in flight; free the
            # oldest beyond that, from a random age to vary hole sizes.
            while len(live) > self.threads:
                victim = live.pop(rng.randrange(len(live) // 2 + 1))
                yield FreeOp(victim)


class ObjectDetection(CoRunner):
    """MLPerf objdet (SSD-MobileNet): per-inference tensor churn against
    persistent weights; the highest page-fault rate of the co-runner set."""

    steady_footprint_pages = 2600

    def __init__(self, seed: int = 0, weight_pages: int = 1800, activation_pages: int = 420) -> None:
        super().__init__("objdet", seed)
        self.weight_pages = weight_pages
        self.activation_pages = activation_pages

    def ops(self) -> Iterator[MemoryOp]:
        rng = self.rng()
        yield MmapOp("weights", self.weight_pages)
        yield PhaseOp(WorkloadPhase.INIT)
        yield from sequential_touch("weights", self.weight_pages)
        yield PhaseOp(WorkloadPhase.COMPUTE)
        for inference in itertools.count():
            region = f"act-{inference}"
            yield MmapOp(region, self.activation_pages)
            # Interleave activation writes with streaming weight reads.
            weight_cursor = rng.randrange(self.weight_pages)
            for page in range(self.activation_pages):
                yield AccessOp(region, page, block=page % 64, write=True)
                weight_cursor = (weight_cursor + 3) % self.weight_pages
                yield AccessOp("weights", weight_cursor, block=page % 64)
            yield FreeOp(region)


class Chameleon(CoRunner):
    """Chameleon HTML table rendering: short-lived template buffers."""

    steady_footprint_pages = 300

    def __init__(self, seed: int = 0) -> None:
        super().__init__("chameleon", seed)

    def ops(self) -> Iterator[MemoryOp]:
        rng = self.rng()
        yield MmapOp("templates", 200)
        yield PhaseOp(WorkloadPhase.INIT)
        yield from sequential_touch("templates", 200)
        yield PhaseOp(WorkloadPhase.COMPUTE)
        for request in itertools.count():
            region = f"render-{request}"
            npages = rng.randrange(20, 60)
            yield MmapOp(region, npages)
            for page in range(npages):
                yield AccessOp(region, page, block=rng.randrange(64), write=True)
                yield AccessOp("templates", rng.randrange(200), block=rng.randrange(64))
            yield FreeOp(region)


class PyAes(CoRunner):
    """pyaes block-cipher encryption: tiny footprint, compute-bound."""

    steady_footprint_pages = 48

    def __init__(self, seed: int = 0) -> None:
        super().__init__("pyaes", seed)

    def ops(self) -> Iterator[MemoryOp]:
        rng = self.rng()
        yield MmapOp("buffers", 48)
        yield PhaseOp(WorkloadPhase.INIT)
        yield from sequential_touch("buffers", 48)
        yield PhaseOp(WorkloadPhase.COMPUTE)
        while True:
            for page in range(48):
                yield AccessOp("buffers", page, block=rng.randrange(64), write=True)


class JsonSerdes(CoRunner):
    """JSON serialization/deserialization: string-buffer churn."""

    steady_footprint_pages = 260

    def __init__(self, seed: int = 0) -> None:
        super().__init__("json_serdes", seed)

    def ops(self) -> Iterator[MemoryOp]:
        rng = self.rng()
        yield MmapOp("documents", 160)
        yield PhaseOp(WorkloadPhase.INIT)
        yield from sequential_touch("documents", 160)
        yield PhaseOp(WorkloadPhase.COMPUTE)
        for request in itertools.count():
            region = f"buf-{request}"
            npages = rng.randrange(30, 100)
            yield MmapOp(region, npages)
            for page in range(npages):
                yield AccessOp(region, page, block=rng.randrange(64), write=True)
                if page % 3 == 0:
                    yield AccessOp("documents", rng.randrange(160), block=rng.randrange(64))
            yield FreeOp(region)


class RnnServing(CoRunner):
    """RNN name-generation serving (PyTorch): per-request hidden-state
    tensors plus random embedding-table look-ups."""

    steady_footprint_pages = 1100

    def __init__(self, seed: int = 0) -> None:
        super().__init__("rnn_serving", seed)

    def ops(self) -> Iterator[MemoryOp]:
        rng = self.rng()
        yield MmapOp("embeddings", 900)
        yield PhaseOp(WorkloadPhase.INIT)
        yield from sequential_touch("embeddings", 900)
        yield PhaseOp(WorkloadPhase.COMPUTE)
        for request in itertools.count():
            region = f"hidden-{request}"
            npages = rng.randrange(100, 200)
            yield MmapOp(region, npages)
            picks = zipf_page_sequence(rng, 900, npages, alpha=1.0)
            for page in range(npages):
                yield AccessOp(region, page, block=rng.randrange(64), write=True)
                yield AccessOp("embeddings", picks[page], block=rng.randrange(64))
            yield FreeOp(region)
