"""Bench: regenerate Figure 6 -- performance improvement with objdet.

Reproduction targets:
* every benchmark improves (the paper's headline: PTEMagnet never slows
  anything down);
* the geometric mean lands in the paper's single-digit band (paper: 4%);
* low-TLB-pressure SPEC stand-ins see only marginal changes (paper: 0-1%)
  and, critically, no slowdown beyond noise.
"""

from conftest import emit_snapshots, run_once

from repro.experiments import render_figure6, run_figure6
from repro.experiments.runner import figure6_snapshots


def test_figure6(benchmark, platform, seed):
    result = run_once(benchmark, run_figure6, platform, seed=seed)
    print()
    print(render_figure6(result))
    emit_snapshots("figure6", figure6_snapshots(result))

    assert len(result.improvements) == 8
    for name, improvement in result.improvements.items():
        assert improvement > 0.0, f"{name} must not be slowed down"
        assert improvement < 15.0, f"{name}: gain implausibly large"
    assert 1.5 <= result.geomean <= 8.0  # paper: 4%
    assert result.best <= 12.0  # paper: 9% max
    # Low-pressure control group: small effects, never a real slowdown
    # (seed-averaged; residual noise band +-1.5%).
    for name, improvement in result.low_pressure.items():
        assert improvement > -1.5, f"{name} slowed down"
        assert improvement < 2.5, f"{name}: should be TLB-insensitive"
