"""Workload models: the benchmarks and co-runners of Table 3.

Real binaries are unavailable in this environment (see DESIGN.md), so each
application is modelled as a generator of memory operations -- mmap,
touch, access, free -- whose footprint, phase structure, spatial locality
and TLB pressure match the qualitative behaviour of the original program.
Page-walk behaviour depends only on that address stream, which is what
preserves the paper's effects.
"""

from .base import (
    CHUNK_SIZE,
    AccessOp,
    BrkOp,
    FreeOp,
    MmapOp,
    OpChunk,
    PhaseOp,
    Workload,
    WorkloadPhase,
    chunk_ops,
    chunks_from_arrays,
    expand_chunks,
    pack_chunk,
    tail_chunk,
)
from .scripted import ScriptedWorkload
from .trace import TraceWorkload, load_trace, save_trace
from .corunners import (
    Chameleon,
    JsonSerdes,
    ObjectDetection,
    PyAes,
    RnnServing,
    StressNg,
)
from .graph import Bfs, ConnectedComponents, GraphWorkload, Nibble, PageRank
from .registry import (
    BENCHMARKS,
    CO_RUNNERS,
    LOW_PRESSURE_BENCHMARKS,
    make_benchmark,
    make_corunner,
    table3_rows,
)
from .spec import Gcc, LowPressureSpec, Mcf, Omnetpp, SpecWorkload, Xz

__all__ = [
    "AccessOp",
    "BENCHMARKS",
    "BrkOp",
    "CHUNK_SIZE",
    "OpChunk",
    "chunk_ops",
    "chunks_from_arrays",
    "expand_chunks",
    "pack_chunk",
    "tail_chunk",
    "ScriptedWorkload",
    "TraceWorkload",
    "load_trace",
    "save_trace",
    "Bfs",
    "CO_RUNNERS",
    "Chameleon",
    "ConnectedComponents",
    "FreeOp",
    "Gcc",
    "GraphWorkload",
    "JsonSerdes",
    "LOW_PRESSURE_BENCHMARKS",
    "LowPressureSpec",
    "Mcf",
    "MmapOp",
    "Nibble",
    "ObjectDetection",
    "Omnetpp",
    "PageRank",
    "PhaseOp",
    "PyAes",
    "RnnServing",
    "SpecWorkload",
    "StressNg",
    "Workload",
    "WorkloadPhase",
    "Xz",
    "make_benchmark",
    "make_corunner",
    "table3_rows",
]
