#!/usr/bin/env python3
"""Quickstart: measure PTEMagnet's effect on one colocated benchmark.

Builds the full simulated stack (host kernel, VM, guest kernel, caches,
TLBs, nested page walker), colocates pagerank with the objdet co-runner,
runs the scenario under the default kernel and under PTEMagnet, and
prints the headline numbers -- the same pipeline the Figure 6 benchmark
uses, for a single benchmark.

Run:  python examples/quickstart.py
"""

from repro import PlatformConfig, Simulation, make_benchmark, make_corunner
from repro.workloads import WorkloadPhase


def run_once(ptemagnet: bool) -> dict:
    """Run pagerank + objdet under one kernel; return headline metrics."""
    platform = PlatformConfig().with_ptemagnet(ptemagnet)
    sim = Simulation(platform)
    sim.scheduler.ops_per_slice = 2

    # The co-runner starts first and keeps running for the whole
    # experiment; fast-forward its warm-up churn (only allocator state
    # matters before measurement).
    corunner = sim.add_workload(make_corunner("objdet"), weight=3)
    corunner.fast_forward = True
    for _ in range(1000):
        sim.turn()

    bench = sim.add_workload(make_benchmark("pagerank"))
    bench.fast_forward = True
    sim.run_until_phase(bench, WorkloadPhase.COMPUTE)

    # Full fidelity + measurement from the compute phase on.
    bench.fast_forward = False
    corunner.fast_forward = False
    for _ in range(50):
        sim.turn()
    bench.start_measurement()
    sim.run_until_finished(bench)

    counters = sim.result_for(bench).counters
    return {
        "kernel": "PTEMagnet" if ptemagnet else "default",
        "cycles": counters.cycles,
        "walk_cycles": counters.walk_cycles,
        "host_walk_cycles": counters.host_walk_cycles,
        "tlb_miss_rate": counters.tlb_miss_rate,
        "host_pt_fragmentation": counters.host_pt_fragmentation,
    }


def main() -> None:
    default = run_once(ptemagnet=False)
    magnet = run_once(ptemagnet=True)

    print("pagerank colocated with objdet inside one VM")
    print("-" * 52)
    for row in (default, magnet):
        print(
            f"{row['kernel']:>10}: {row['cycles']:>10} cycles, "
            f"walks {row['walk_cycles']:>8} cy "
            f"(host PT {row['host_walk_cycles']} cy), "
            f"fragmentation {row['host_pt_fragmentation']:.2f}"
        )
    improvement = (default["cycles"] - magnet["cycles"]) / default["cycles"]
    print("-" * 52)
    print(f"PTEMagnet speedup: {improvement:.1%} (paper: ~7% for this pair)")


if __name__ == "__main__":
    main()
