"""Spawn-safe parallel execution of experiment cells.

``python -m repro.experiments.runner --jobs N`` fans the requested
experiment x seed cells out over worker processes. Experiment cells are
embarrassingly parallel -- every cell builds a complete simulation stack
from its (experiment, seed) coordinates -- so the only work this module
does beyond pool management is keeping parallel output *deterministic*:

* Workers share no state: the pool uses the ``spawn`` start method, so
  each worker imports the package fresh and builds its own
  :class:`~repro.config.PlatformConfig` and simulation stack. Nothing
  leaks between cells even on platforms where ``fork`` is the default.
* Results travel as JSON-safe documents
  (:meth:`~repro.metrics.registry.MetricsSnapshot.to_dict` and the
  observability capsule of :mod:`repro.obs.remote`), never as pickled
  model objects, so a worker of one build cannot smuggle unstable state
  into the parent.
* The parent consumes results strictly in submission order, regardless
  of completion order. Files written from a parallel run are therefore
  byte-identical to a ``--jobs 1`` run.

Observability crosses the process boundary in two channels:

* ``spec`` (a :class:`~repro.obs.remote.CaptureSpec`) ships the
  parent's ``--trace``/``--profile``/``--sample-interval`` request to
  every worker; :func:`run_cell` installs an
  :class:`~repro.obs.remote.ObservabilityCapsule` around the experiment
  and returns the captured telemetry as the fifth element of
  :data:`CellOutput`.
* ``on_event`` receives lifecycle events -- ``submit`` from the parent,
  ``start``/``finish`` heartbeats from workers (via a manager queue),
  ``crash`` on worker death -- powering the runner's ``--progress``
  view and run manifest. A cell's ``finish`` heartbeat is always
  delivered before its result is yielded, so manifest writers observing
  only these callbacks stay deterministic.

A worker that dies outright (hard exit, OOM kill) surfaces as
:class:`ParallelExecutionError` naming the cell that was in flight --
never as a hang. Ordinary exceptions raised by experiment code pickle
through the pool and re-raise in the parent unchanged.
"""

from __future__ import annotations

import queue as queue_module
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from .errors import ReproError

#: What a worker returns: (rendered text, JSON payload, snapshot
#: documents keyed by label, elapsed seconds, observability capsule
#: document or None). Legacy four-element outputs (no capsule) are
#: still accepted from custom workers.
CellOutput = Tuple[str, dict, Dict[str, dict], float, Optional[dict]]

#: How long the parent waits for a finished cell's ``finish`` heartbeat
#: to drain from the manager queue before giving up (the put happens
#: before the worker returns, so this only guards against a dying
#: manager process).
_HEARTBEAT_DRAIN_SECONDS = 5.0


class ParallelExecutionError(ReproError):
    """A worker process died before returning its cell's result."""


@dataclass(frozen=True)
class ExperimentCell:
    """One (experiment, seed) unit of schedulable work."""

    experiment: str
    seed: int

    @property
    def label(self) -> str:
        return f"{self.experiment}[seed={self.seed}]"


@dataclass
class CellResult:
    """One executed cell's results, as handed back to the parent."""

    cell: ExperimentCell
    text: str
    payload: dict
    #: label -> snapshot document (see ``MetricsSnapshot.to_dict``).
    snapshot_docs: Dict[str, dict]
    elapsed_seconds: float
    #: Observability capsule document captured by the worker (see
    #: :class:`repro.obs.remote.ObservabilityCapsule`), or None when the
    #: run had no capture spec.
    capsule: Optional[dict] = None


def run_cell(
    experiment: str,
    seed: int,
    spec: Optional[object] = None,
    heartbeat: Optional[object] = None,
) -> CellOutput:
    """Execute one cell and return JSON-safe results.

    Top-level so it pickles under the spawn start method; the imports
    happen inside so a fresh worker builds the full stack itself (and so
    importing this module never drags in the whole experiment suite).

    ``spec`` is the parent's :class:`~repro.obs.remote.CaptureSpec`; an
    :class:`~repro.obs.remote.ObservabilityCapsule` is installed around
    the experiment and its document returned as the fifth output
    element. ``heartbeat`` is a queue-like object receiving one
    ``start`` and one ``finish`` event dict (the ``finish`` put always
    precedes the return, which is what lets the parent order manifest
    rows deterministically).
    """
    from .config import PlatformConfig
    from .experiments.runner import EXPERIMENTS
    from .obs.remote import (
        ObservabilityCapsule,
        heartbeat_finish,
        heartbeat_start,
    )

    if heartbeat is not None:
        heartbeat.put(heartbeat_start(experiment, seed))
    capsule = ObservabilityCapsule(spec)
    capsule.install()
    started = time.perf_counter()
    try:
        text, payload, snapshots = EXPERIMENTS[experiment](
            PlatformConfig(), seed
        )
    except BaseException:
        capsule.abort()
        raise
    elapsed = time.perf_counter() - started
    capsule_doc = capsule.finalize()
    docs = {label: snapshots[label].to_dict() for label in snapshots}
    if heartbeat is not None:
        heartbeat.put(heartbeat_finish(experiment, seed, elapsed))
    return text, payload, docs, elapsed, capsule_doc


class _InlineHeartbeat:
    """Queue-shaped adapter that dispatches events synchronously.

    Used for ``--jobs 1`` so in-process runs emit the same lifecycle
    events as pooled ones, in the same relative order.
    """

    def __init__(self, emit: Callable[[dict], None]) -> None:
        self._emit = emit

    def put(self, event: dict) -> None:
        self._emit(event)


def _to_result(cell: ExperimentCell, output: Sequence[object]) -> CellResult:
    text, payload, docs, elapsed, *rest = output
    capsule = rest[0] if rest else None
    return CellResult(cell, text, payload, docs, elapsed, capsule)


def _drain_heartbeats(
    heartbeats,
    emit: Callable[[dict], None],
    finish_counts: Dict[Tuple[str, int], int],
    timeout: float = 0.0,
) -> None:
    """Relay every queued heartbeat to ``emit`` (at most one blocking
    ``get``, then everything immediately available)."""
    block = timeout > 0
    while True:
        try:
            if block:
                event = heartbeats.get(timeout=timeout)
                block = False
            else:
                event = heartbeats.get_nowait()
        except queue_module.Empty:
            return
        if event.get("event") == "finish":
            key = (str(event.get("experiment")), int(event.get("seed", 0)))
            finish_counts[key] = finish_counts.get(key, 0) + 1
        emit(event)


def run_cells(
    cells: Sequence[ExperimentCell],
    jobs: int,
    worker: Callable[..., CellOutput] = run_cell,
    spec: Optional[object] = None,
    on_event: Optional[Callable[[dict], None]] = None,
) -> Iterator[CellResult]:
    """Run ``cells``, yielding results in submission order.

    ``jobs == 1`` executes in-process; ``jobs > 1`` fans out over
    ``jobs`` spawned workers. Either way results are yielded in
    submission order regardless of completion order, so consumers that
    merge or print them are deterministic by construction.

    ``spec``/``on_event`` (see module docstring) are forwarded to the
    worker only when either is set, so custom two-argument workers keep
    working unchanged.
    """
    if jobs < 1:
        raise ReproError("jobs must be >= 1")
    emit = on_event if on_event is not None else (lambda event: None)
    wants_extras = spec is not None or on_event is not None
    if jobs == 1:
        heartbeat = _InlineHeartbeat(emit) if on_event is not None else None
        for index, cell in enumerate(cells):
            emit(
                {
                    "event": "submit",
                    "experiment": cell.experiment,
                    "seed": cell.seed,
                    "index": index,
                }
            )
            if wants_extras:
                output = worker(cell.experiment, cell.seed, spec, heartbeat)
            else:
                output = worker(cell.experiment, cell.seed)
            yield _to_result(cell, output)
        return
    context = get_context("spawn")
    manager = None
    heartbeats = None
    finish_counts: Dict[Tuple[str, int], int] = {}
    consumed_counts: Dict[Tuple[str, int], int] = {}
    if on_event is not None:
        # A manager-proxy queue: plain multiprocessing.Queue objects do
        # not pickle through ProcessPoolExecutor.submit arguments.
        manager = context.Manager()
        heartbeats = manager.Queue()
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ) as pool:
            submitted = []
            for index, cell in enumerate(cells):
                if wants_extras:
                    future = pool.submit(
                        worker, cell.experiment, cell.seed, spec, heartbeats
                    )
                else:
                    future = pool.submit(worker, cell.experiment, cell.seed)
                emit(
                    {
                        "event": "submit",
                        "experiment": cell.experiment,
                        "seed": cell.seed,
                        "index": index,
                    }
                )
                submitted.append((cell, future))
            for cell, future in submitted:
                try:
                    if heartbeats is not None:
                        while not future.done():
                            _drain_heartbeats(
                                heartbeats, emit, finish_counts, timeout=0.1
                            )
                    output = future.result()
                except BrokenProcessPool as exc:
                    emit(
                        {
                            "event": "crash",
                            "experiment": cell.experiment,
                            "seed": cell.seed,
                            "error": "worker process died",
                        }
                    )
                    raise ParallelExecutionError(
                        f"worker process died while running {cell.label}; "
                        "partial results were discarded (worker crash or "
                        "out-of-memory kill)"
                    ) from exc
                if heartbeats is not None:
                    # The worker's finish put precedes its return, so
                    # the event is already in the manager queue: drain
                    # until relayed, keeping manifest row order
                    # deterministic (submission order, finish before
                    # yield).
                    key = (cell.experiment, cell.seed)
                    consumed = consumed_counts.get(key, 0) + 1
                    consumed_counts[key] = consumed
                    deadline = time.perf_counter() + _HEARTBEAT_DRAIN_SECONDS
                    while (
                        finish_counts.get(key, 0) < consumed
                        and time.perf_counter() < deadline
                    ):
                        _drain_heartbeats(
                            heartbeats, emit, finish_counts, timeout=0.1
                        )
                yield _to_result(cell, output)
            if heartbeats is not None:
                _drain_heartbeats(heartbeats, emit, finish_counts)
    finally:
        if manager is not None:
            manager.shutdown()
