"""Standard metric collectors: simulator state -> metrics snapshots.

Declares the canonical metric schema (every :class:`PerfCounters` /
``KernelStats`` / meminfo / cache-stream / host-kernel quantity under a
stable dotted name in :data:`~repro.metrics.registry.REGISTRY`) and the
collector functions that fill a :class:`MetricsSnapshot` from live
simulator objects. Experiments, benchmarks and the runner's
``--metrics-out`` all build their snapshot documents through
:func:`snapshot_run_result` / :func:`snapshot_outcome`, so every JSON the
project emits speaks the same schema.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .registry import REGISTRY, MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..cache.hierarchy import CacheHierarchy
    from ..os.kernel import GuestKernel, KernelStats
    from ..sim.results import RunResult
    from ..virt.hypervisor import HostStats
    from .counters import PerfCounters


# ---------------------------------------------------------------------- #
# Canonical schema: one registration per metric, literal dotted names
# (the ``metrics-naming`` lint rule checks these statically).
# ---------------------------------------------------------------------- #

REGISTRY.counter("perf.cycles", "modelled execution time of the measured window", "cycles")
REGISTRY.counter("perf.accesses", "application memory accesses issued", "accesses")
REGISTRY.counter("perf.data_memory_accesses", "data-stream accesses served by main memory", "accesses")
REGISTRY.counter("perf.tlb_misses", "complete TLB misses (triggered a 2D walk)", "misses")
REGISTRY.counter("perf.walk_cycles", "total cycles spent in page walks", "cycles")
REGISTRY.counter("perf.host_walk_cycles", "walk cycles spent traversing the host PT", "cycles")
REGISTRY.counter("perf.gpt_accesses", "guest-PT entry accesses", "accesses")
REGISTRY.counter("perf.gpt_memory_accesses", "guest-PT accesses served by main memory", "accesses")
REGISTRY.counter("perf.hpt_accesses", "host-PT entry accesses", "accesses")
REGISTRY.counter("perf.hpt_memory_accesses", "host-PT accesses served by main memory", "accesses")
REGISTRY.counter("perf.faults", "page faults taken in the measured window", "faults")
REGISTRY.counter("perf.fault_cycles", "cycles spent in fault handling", "cycles")
REGISTRY.gauge("perf.host_pt_fragmentation", "host-PT fragmentation metric at window end")
REGISTRY.gauge("perf.fragmented_group_fraction", "fraction of groups scattered to 8 hPTE blocks")
REGISTRY.gauge("perf.tlb_miss_rate", "TLB misses per application access")
REGISTRY.gauge("perf.gpt_memory_fraction", "fraction of gPT accesses served by memory")
REGISTRY.gauge("perf.hpt_memory_fraction", "fraction of hPT accesses served by memory")
REGISTRY.histogram("perf.fault_latencies", "per-fault handler latency distribution", "cycles")

REGISTRY.counter("kernel.faults", "page faults handled by the guest kernel", "faults")
REGISTRY.counter("kernel.default_faults", "faults served by the default single-page path", "faults")
REGISTRY.counter("kernel.reservation_hit_faults", "faults served from an existing reservation", "faults")
REGISTRY.counter("kernel.reservation_new_faults", "faults that created a reservation", "faults")
REGISTRY.counter("kernel.fallback_faults", "PTEMagnet faults falling back to single pages", "faults")
REGISTRY.counter("kernel.cow_faults", "copy-on-write breaks", "faults")
REGISTRY.counter("kernel.spurious_faults", "faults on already-present pages", "faults")
REGISTRY.counter("kernel.thp_faults", "THP huge-mapping faults", "faults")
REGISTRY.counter("kernel.thp_fallback_faults", "THP faults stalled into 4KB fallback", "faults")
REGISTRY.counter("kernel.thp_splits", "huge mappings demoted to 4KB", "splits")
REGISTRY.counter("kernel.ca_contiguous_faults", "CA-paging faults extending contiguity", "faults")
REGISTRY.counter("kernel.ca_fallback_faults", "CA-paging faults on a taken target frame", "faults")
REGISTRY.counter("kernel.pages_freed", "pages released back by the guest kernel", "pages")
REGISTRY.counter("kernel.fault_cycles", "kernel-wide cycles spent in fault handling", "cycles")
REGISTRY.counter("kernel.reclaim_invocations", "reservation-reclaim daemon passes", "passes")
REGISTRY.counter("kernel.reclaim_pages_released", "reserved pages released under pressure", "pages")
REGISTRY.histogram("kernel.fault_latencies", "kernel-wide fault latency distribution", "cycles")

REGISTRY.gauge("mem.total_pages", "guest physical memory size", "pages")
REGISTRY.gauge("mem.free_pages", "buddy-core free pages", "pages")
REGISTRY.gauge("mem.pcp_cached_pages", "pages held in per-CPU caches", "pages")
REGISTRY.gauge("mem.user_pages", "pages mapped to applications", "pages")
REGISTRY.gauge("mem.page_table_pages", "pages holding guest page-table nodes", "pages")
REGISTRY.gauge("mem.reserved_pages", "PTEMagnet-reserved, unmapped pages", "pages")
REGISTRY.gauge("mem.kernel_pages", "other kernel-owned pages", "pages")
REGISTRY.gauge("mem.free_fraction", "fraction of guest physical memory free")

REGISTRY.counter("host.ept_faults", "EPT violations taken by the host", "faults")
REGISTRY.counter("host.pages_backed", "guest frames backed by the host", "pages")
REGISTRY.counter("host.pages_unbacked", "guest frames released by the host", "pages")

REGISTRY.counter("run.faults_total", "lifetime faults of the measured process", "faults")
REGISTRY.counter("run.reservation_hits", "lifetime reservation hits of the process", "faults")
REGISTRY.counter("run.ops_executed", "workload operations executed", "ops")
REGISTRY.gauge("run.rss_pages", "resident set size at run end", "pages")
REGISTRY.counter("sim.turns", "scheduler turns executed", "turns")

#: Cache streams registered with literal names (others register lazily).
REGISTRY.counter("cache.data.accesses", "data-stream accesses", "accesses")
REGISTRY.counter("cache.data.cycles", "data-stream access cycles", "cycles")
REGISTRY.counter("cache.data.served_l1", "data accesses served by L1", "accesses")
REGISTRY.counter("cache.data.served_l2", "data accesses served by L2", "accesses")
REGISTRY.counter("cache.data.served_llc", "data accesses served by the LLC", "accesses")
REGISTRY.counter("cache.data.served_memory", "data accesses served by main memory", "accesses")
REGISTRY.counter("cache.gpt.accesses", "guest-PT-stream accesses", "accesses")
REGISTRY.counter("cache.gpt.cycles", "guest-PT-stream access cycles", "cycles")
REGISTRY.counter("cache.gpt.served_l1", "gPT accesses served by L1", "accesses")
REGISTRY.counter("cache.gpt.served_l2", "gPT accesses served by L2", "accesses")
REGISTRY.counter("cache.gpt.served_llc", "gPT accesses served by the LLC", "accesses")
REGISTRY.counter("cache.gpt.served_memory", "gPT accesses served by main memory", "accesses")
REGISTRY.counter("cache.hpt.accesses", "host-PT-stream accesses", "accesses")
REGISTRY.counter("cache.hpt.cycles", "host-PT-stream access cycles", "cycles")
REGISTRY.counter("cache.hpt.served_l1", "hPT accesses served by L1", "accesses")
REGISTRY.counter("cache.hpt.served_l2", "hPT accesses served by L2", "accesses")
REGISTRY.counter("cache.hpt.served_llc", "hPT accesses served by the LLC", "accesses")
REGISTRY.counter("cache.hpt.served_memory", "hPT accesses served by main memory", "accesses")


# ---------------------------------------------------------------------- #
# Collectors
# ---------------------------------------------------------------------- #

def collect_perf_counters(
    snapshot: MetricsSnapshot, counters: "PerfCounters"
) -> None:
    """Record every :class:`PerfCounters` field under ``perf.*``."""
    snapshot.set("perf.cycles", counters.cycles)
    snapshot.set("perf.accesses", counters.accesses)
    snapshot.set("perf.data_memory_accesses", counters.data_memory_accesses)
    snapshot.set("perf.tlb_misses", counters.tlb_misses)
    snapshot.set("perf.walk_cycles", counters.walk_cycles)
    snapshot.set("perf.host_walk_cycles", counters.host_walk_cycles)
    snapshot.set("perf.gpt_accesses", counters.gpt_accesses)
    snapshot.set("perf.gpt_memory_accesses", counters.gpt_memory_accesses)
    snapshot.set("perf.hpt_accesses", counters.hpt_accesses)
    snapshot.set("perf.hpt_memory_accesses", counters.hpt_memory_accesses)
    snapshot.set("perf.faults", counters.faults)
    snapshot.set("perf.fault_cycles", counters.fault_cycles)
    snapshot.set("perf.host_pt_fragmentation", counters.host_pt_fragmentation)
    snapshot.set(
        "perf.fragmented_group_fraction", counters.fragmented_group_fraction
    )
    snapshot.set("perf.tlb_miss_rate", counters.tlb_miss_rate)
    snapshot.set("perf.gpt_memory_fraction", counters.gpt_memory_fraction)
    snapshot.set("perf.hpt_memory_fraction", counters.hpt_memory_fraction)
    snapshot.set("perf.fault_latencies", counters.fault_latencies.snapshot())


def collect_kernel_stats(
    snapshot: MetricsSnapshot, stats: "KernelStats"
) -> None:
    """Record guest-kernel activity counters under ``kernel.*``."""
    snapshot.set("kernel.faults", stats.faults)
    snapshot.set("kernel.default_faults", stats.default_faults)
    snapshot.set("kernel.reservation_hit_faults", stats.reservation_hit_faults)
    snapshot.set("kernel.reservation_new_faults", stats.reservation_new_faults)
    snapshot.set("kernel.fallback_faults", stats.fallback_faults)
    snapshot.set("kernel.cow_faults", stats.cow_faults)
    snapshot.set("kernel.spurious_faults", stats.spurious_faults)
    snapshot.set("kernel.thp_faults", stats.thp_faults)
    snapshot.set("kernel.thp_fallback_faults", stats.thp_fallback_faults)
    snapshot.set("kernel.thp_splits", stats.thp_splits)
    snapshot.set("kernel.ca_contiguous_faults", stats.ca_contiguous_faults)
    snapshot.set("kernel.ca_fallback_faults", stats.ca_fallback_faults)
    snapshot.set("kernel.pages_freed", stats.pages_freed)
    snapshot.set("kernel.fault_cycles", stats.fault_cycles)
    invoked = [report for report in stats.reclaim_reports if report.invoked]
    snapshot.set("kernel.reclaim_invocations", len(invoked))
    snapshot.set(
        "kernel.reclaim_pages_released",
        sum(report.pages_released for report in invoked),
    )
    snapshot.set("kernel.fault_latencies", stats.fault_latencies.snapshot())


def collect_meminfo(snapshot: MetricsSnapshot, kernel: "GuestKernel") -> None:
    """Record the meminfo breakdown under ``mem.*``."""
    counts = kernel.meminfo()
    snapshot.set("mem.total_pages", counts["total"])
    snapshot.set("mem.free_pages", counts["free"])
    snapshot.set("mem.pcp_cached_pages", counts["pcp_cached"])
    snapshot.set("mem.user_pages", counts["user"])
    snapshot.set("mem.page_table_pages", counts["page_tables"])
    snapshot.set("mem.reserved_pages", counts["reserved"])
    snapshot.set("mem.kernel_pages", counts["kernel"])
    snapshot.set("mem.free_fraction", kernel.free_fraction)


def collect_host_stats(snapshot: MetricsSnapshot, stats: "HostStats") -> None:
    """Record host-kernel activity under ``host.*``."""
    snapshot.set("host.ept_faults", stats.ept_faults)
    snapshot.set("host.pages_backed", stats.pages_backed)
    snapshot.set("host.pages_unbacked", stats.pages_unbacked)


def collect_cache_streams(
    snapshot: MetricsSnapshot, hierarchy: "CacheHierarchy"
) -> None:
    """Record per-stream served-by-level tallies under ``cache.<stream>.*``.

    The standard streams (data/gpt/hpt) are pre-registered with literal
    names; any other stream tag registers its metrics here (validated at
    registration, like dynamically-named tracepoints).
    """
    from ..cache.hierarchy import AccessOutcome

    for stream in sorted(hierarchy.streams):
        counters = hierarchy.streams[stream]
        base = f"cache.{stream}"
        snapshot.registry.counter(f"{base}.accesses")
        snapshot.registry.counter(f"{base}.cycles")
        snapshot.set(f"{base}.accesses", counters.accesses)
        snapshot.set(f"{base}.cycles", counters.cycles)
        for outcome in AccessOutcome:
            name = f"{base}.served_{outcome.name.lower()}"
            snapshot.registry.counter(name)
            snapshot.set(name, counters.served_by[outcome])


# ---------------------------------------------------------------------- #
# High-level snapshot builders
# ---------------------------------------------------------------------- #

def snapshot_run_result(label: str, result: "RunResult") -> MetricsSnapshot:
    """Snapshot one :class:`~repro.sim.results.RunResult`."""
    snapshot = MetricsSnapshot(label)
    collect_perf_counters(snapshot, result.counters)
    snapshot.set("run.rss_pages", result.rss_pages)
    snapshot.set("run.faults_total", result.faults_total)
    snapshot.set("run.reservation_hits", result.reservation_hits)
    snapshot.set("run.ops_executed", result.ops_executed)
    return snapshot


def snapshot_outcome(label: str, outcome) -> MetricsSnapshot:
    """Snapshot one :class:`~repro.experiments.common.ColocationOutcome`.

    Combines the benchmark's perf counters with whole-simulation state
    (kernel stats, meminfo, host stats, shared-cache streams, turns) and
    attaches the outcome's measurement-window profile tree when one was
    recorded (``--profile`` / :data:`~repro.obs.profile.PROFILER`).
    """
    snapshot = snapshot_run_result(label, outcome.benchmark)
    sim = outcome.simulation
    collect_kernel_stats(snapshot, sim.kernel.stats)
    collect_meminfo(snapshot, sim.kernel)
    collect_host_stats(snapshot, sim.host.stats)
    if sim.runs:
        collect_cache_streams(snapshot, sim.runs[0].core.hierarchy)
    snapshot.set("sim.turns", sim.turns)
    profile = getattr(outcome, "profile", None)
    if profile is not None:
        snapshot.profile = profile
    return snapshot


def snapshot_simulation(
    label: str, sim, run_result: Optional["RunResult"] = None
) -> MetricsSnapshot:
    """Snapshot a :class:`~repro.sim.engine.Simulation` directly.

    ``run_result`` (when given) contributes the ``perf.*`` / ``run.*``
    families; otherwise only whole-simulation metrics are recorded.
    """
    if run_result is not None:
        snapshot = snapshot_run_result(label, run_result)
    else:
        snapshot = MetricsSnapshot(label)
    collect_kernel_stats(snapshot, sim.kernel.stats)
    collect_meminfo(snapshot, sim.kernel)
    collect_host_stats(snapshot, sim.host.stats)
    if sim.runs:
        collect_cache_streams(snapshot, sim.runs[0].core.hierarchy)
    snapshot.set("sim.turns", sim.turns)
    return snapshot
