"""Tests for reservation reclamation (§4.3) and the swap daemon."""

import random

import pytest

from repro.config import GuestConfig, MachineConfig
from repro.core.reclaimer import ReservationReclaimer
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import PhysicalMemory
from repro.os.kernel import GuestKernel
from repro.os.reclaim import SwapDaemon
from repro.units import MB, RESERVATION_PAGES


def make_kernel(memory_mb=8, threshold=0.25):
    return GuestKernel(
        GuestConfig(
            memory_bytes=memory_mb * MB,
            ptemagnet_enabled=True,
            reclaim_threshold=threshold,
        ),
        MachineConfig(),
        rng=random.Random(7),
    )


class TestReservationReclaimer:
    def test_no_pressure_no_reclaim(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        kernel.handle_fault(p, vma.start_vpn)
        report = kernel.run_reclaim()
        assert not report.invoked
        assert len(p.part) == 1

    def test_pressure_releases_unmapped_reserved_pages(self):
        kernel = make_kernel(memory_mb=8, threshold=0.995)  # always pressured
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        kernel.handle_fault(p, vma.start_vpn)  # 1 mapped + 7 reserved
        free_before = kernel.buddy.free_frames
        report = kernel.run_reclaim()
        assert report.invoked
        assert report.pages_released == RESERVATION_PAGES - 1
        assert kernel.buddy.free_frames == free_before + 7
        assert len(p.part) == 0

    def test_mapped_pages_survive_reclaim(self):
        kernel = make_kernel(threshold=0.995)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        outcome = kernel.handle_fault(p, vma.start_vpn)
        kernel.run_reclaim()
        # The mapped page keeps its translation; the app never notices.
        assert p.page_table.translate(vma.start_vpn) == outcome.frame

    def test_reclaim_stops_when_pressure_relieved(self):
        memory = PhysicalMemory(1024, "t")
        buddy = BuddyAllocator(memory)
        # Consume most memory so free fraction is just below threshold.
        held = [buddy.alloc_frame() for _ in range(700)]
        reclaimer = ReservationReclaimer(buddy, 0.30, random.Random(1))
        from repro.core.part import PageReservationTable
        from repro.core.reservation import Reservation

        part = PageReservationTable()
        for i in range(4):
            base = buddy.alloc(3)
            buddy.split_allocation(base)
            entry = Reservation(group=i, base_frame=base)
            entry.map_slot(0)
            part.insert(entry)
        report = reclaimer.maybe_reclaim({1: part})
        assert report.invoked
        # Once above the watermark, remaining reservations are kept.
        assert buddy.free_fraction >= 0.30
        assert len(part) < 4
        assert len(part) > 0

    def test_threshold_validation(self):
        memory = PhysicalMemory(64, "t")
        buddy = BuddyAllocator(memory)
        with pytest.raises(ValueError):
            ReservationReclaimer(buddy, 1.5, random.Random(0))

    def test_faults_after_reclaim_take_default_or_new_path(self):
        kernel = make_kernel(threshold=0.995)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        kernel.handle_fault(p, vma.start_vpn)
        kernel.run_reclaim()
        # Next fault in the same group cannot hit the deleted reservation.
        outcome = kernel.handle_fault(p, vma.start_vpn + 1)
        assert outcome.kind.value in ("reservation_new", "fallback", "default")


class TestSwapDaemon:
    def test_no_eviction_above_floor(self):
        kernel = make_kernel()
        daemon = SwapDaemon(kernel, floor=0.01, rng=random.Random(3))
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 8)
        kernel.handle_fault(p, vma.start_vpn)
        report = daemon.maybe_evict()
        assert report.pages_evicted == 0

    def test_eviction_under_pressure(self):
        kernel = make_kernel(memory_mb=8)
        daemon = SwapDaemon(kernel, floor=0.99, rng=random.Random(3))
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 32)
        for vpn in vma.pages():
            kernel.handle_fault(p, vpn)
        report = daemon.maybe_evict(batch_pages=8)
        assert report.pages_evicted == 8
        assert report.victim_pid == p.pid
        assert p.rss_pages == 24

    def test_evicted_pages_refault(self):
        kernel = make_kernel(memory_mb=8)
        daemon = SwapDaemon(kernel, floor=0.99, rng=random.Random(3))
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 8)
        for vpn in vma.pages():
            kernel.handle_fault(p, vpn)
        daemon.maybe_evict(batch_pages=4)
        # The VMA is intact, so the page faults back in on next access.
        victim_vpn = next(
            vpn for vpn in vma.pages() if not p.page_table.is_mapped(vpn)
        )
        outcome = kernel.handle_fault(p, victim_vpn)
        assert p.page_table.is_mapped(victim_vpn)

    def test_floor_validation(self):
        kernel = make_kernel()
        with pytest.raises(ValueError):
            SwapDaemon(kernel, floor=2.0, rng=random.Random(0))

    def test_swap_of_reserved_page_releases_reservation(self):
        """§4.4: choosing a reserved page for swap reclaims the whole
        reservation first."""
        kernel = make_kernel(memory_mb=8)
        daemon = SwapDaemon(kernel, floor=0.99, rng=random.Random(3))
        p = kernel.create_process("app")
        vma = kernel.mmap(p, RESERVATION_PAGES * 2)
        base = ((vma.start_vpn // RESERVATION_PAGES) + 1) * RESERVATION_PAGES
        kernel.handle_fault(p, base)  # 1 mapped + 7 reserved
        assert len(p.part) == 1
        free_before = kernel.buddy.free_frames
        report = daemon.maybe_evict(batch_pages=1)
        assert report.pages_evicted == 1
        assert len(p.part) == 0  # reservation reclaimed
        # 7 unmapped reserved frames + the evicted page (+ pruned PT nodes).
        assert kernel.buddy.free_frames >= free_before + RESERVATION_PAGES
