"""Fragmentation statistics over buddy-allocator state.

These are memory-side fragmentation measures (how broken-up the *free*
space is), complementary to the paper's host-PT fragmentation metric in
:mod:`repro.metrics.fragmentation`, which measures how scattered the
*allocated* frames of an application are.
"""

from __future__ import annotations

from typing import Dict

from .buddy import MAX_ORDER, BuddyAllocator


def free_list_histogram(allocator: BuddyAllocator) -> Dict[int, int]:
    """Free frames available at each order.

    Returns a mapping ``order -> free frames held in blocks of that order``.
    A healthy, unfragmented allocator concentrates frames at high orders; a
    churned allocator's histogram skews toward order 0.
    """
    snapshot = allocator.free_list_snapshot()
    return {order: count << order for order, count in snapshot.items()}


def unusable_free_index(allocator: BuddyAllocator, order: int) -> float:
    """Linux's "unusable free space index" for a target ``order``.

    The fraction of free memory that cannot satisfy an allocation of
    ``2**order`` contiguous frames: 0.0 means every free frame sits in a
    sufficiently large block, 1.0 means no request of that order can be
    served. This is the standard kernel measure (``extfrag_index`` family)
    for how hostile memory is to contiguity requests -- e.g. PTEMagnet's
    order-3 reservations.
    """
    if not 0 <= order <= MAX_ORDER:
        raise ValueError(f"order must be in [0, {MAX_ORDER}]")
    total_free = allocator.free_frames
    if total_free == 0:
        return 1.0
    usable = 0
    snapshot = allocator.free_list_snapshot()
    for block_order, count in snapshot.items():
        if block_order >= order:
            usable += count << block_order
    return (total_free - usable) / total_free
