"""§6.2: incidence of non-allocated pages within reservations.

For each benchmark running under PTEMagnet, sample the number of
reserved-but-unmapped pages over time (the paper samples every second) and
compare it to the benchmark's resident footprint. Paper finding: it never
exceeds 0.2% of the footprint -- reservations fill almost immediately.

The module also implements the paper's adversarial thought experiment: an
application touching only every eighth page it allocates keeps 7 reserved
pages per mapped page (700% overhead), demonstrating the worst case the
reclamation mechanism exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from ..config import PlatformConfig
from ..metrics.report import Table
from ..obs.sampler import PeriodicSampler
from ..sim.engine import Simulation
from ..units import RESERVATION_PAGES
from ..workloads.base import MemoryOp, MmapOp, PhaseOp, Workload, WorkloadPhase
from ..workloads.registry import BENCHMARKS, make_benchmark
from ..workloads.synth import strided_touch
from .common import OPS_PER_SLICE
from .figure5 import OBJDET_WEIGHT


class StrideEighthWorkload(Workload):
    """The §6.2 adversary: touches only every 8th page it allocates.

    Each touched page lands in its own reservation group, so every
    reservation keeps 7 unmapped pages forever.
    """

    def __init__(self, npages: int = 4096, seed: int = 0) -> None:
        super().__init__("stride8", seed)
        self.npages = npages

    @property
    def footprint_pages(self) -> int:
        return self.npages // RESERVATION_PAGES

    def ops(self) -> Iterator[MemoryOp]:
        yield MmapOp("sparse", self.npages)
        yield PhaseOp(WorkloadPhase.INIT)
        yield PhaseOp(WorkloadPhase.COMPUTE)
        yield from strided_touch("sparse", self.npages, RESERVATION_PAGES)
        yield PhaseOp(WorkloadPhase.DONE)


@dataclass
class Sec62Result:
    """Reserved-but-unmapped page overhead per benchmark."""

    #: benchmark -> list of (turn, unmapped reserved pages, rss pages).
    samples: Dict[str, List[Tuple[int, int, int]]] = field(default_factory=dict)

    def peak_overhead_percent(self, name: str) -> float:
        """Maximum unmapped-reserved pages as % of the benchmark footprint.

        The paper expresses the overhead relative to "the benchmark's
        physical memory footprint size" -- the steady footprint, not the
        instantaneous RSS (which is near zero in the first samples).
        """
        samples = self.samples.get(name, [])
        if not samples:
            return 0.0
        footprint = max(rss for _turn, _unmapped, rss in samples)
        if footprint == 0:
            return 0.0
        peak = max(unmapped for _turn, unmapped, _rss in samples)
        return peak / footprint * 100.0

    def peaks(self) -> Dict[str, float]:
        return {name: self.peak_overhead_percent(name) for name in self.samples}


def _run_sampled(
    platform: PlatformConfig,
    workload: Workload,
    sample_every: int,
    corunners: Sequence[Tuple[str, int]],
    seed: int,
) -> List[Tuple[int, int, int]]:
    from ..workloads.registry import make_corunner

    sim = Simulation(platform.with_ptemagnet(True))
    sim.scheduler.ops_per_slice = OPS_PER_SLICE
    for name, weight in corunners:
        co = sim.add_workload(make_corunner(name, seed), weight=weight)
        co.fast_forward = True
    run = sim.add_workload(workload)
    run.fast_forward = True  # §6.2 measures occupancy, not timing
    # Shared periodic sampler (repro.obs): samples fire inside sim.turn()
    # after the reclaim wakeup, on the same cadence the bespoke loop this
    # replaced used, so the series is reproduced value for value.
    sampler = sim.add_sampler(PeriodicSampler(sim, every_turns=sample_every))
    sampler.add_probe(
        "unmapped_reserved",
        lambda s: s.kernel.unmapped_reserved_pages(run.process),
    )
    sampler.add_probe("rss", lambda s: run.process.rss_pages)
    sampler.run_until(lambda: run.finished)
    unmapped = sampler.series["unmapped_reserved"].points
    rss = sampler.series["rss"].points
    return [
        (turn, unmapped_pages, rss_pages)
        for (turn, unmapped_pages), (_turn, rss_pages) in zip(unmapped, rss)
    ]


def run_sec62(
    platform: PlatformConfig = None,
    benchmarks: Sequence[str] = tuple(BENCHMARKS),
    sample_every: int = 50,
    seed: int = 0,
) -> Sec62Result:
    """Sample reservation occupancy through each benchmark's execution."""
    platform = platform or PlatformConfig()
    result = Sec62Result()
    for name in benchmarks:
        result.samples[name] = _run_sampled(
            platform,
            make_benchmark(name, seed),
            sample_every,
            corunners=[("objdet", OBJDET_WEIGHT)],
            seed=seed,
        )
    return result


def run_adversarial_sec62(
    platform: PlatformConfig = None, seed: int = 0
) -> float:
    """Peak overhead of the stride-8 adversary, as a multiple of its RSS.

    The paper predicts ~7x: seven unmapped reserved pages per mapped page.
    """
    platform = platform or PlatformConfig()
    samples = _run_sampled(
        platform,
        StrideEighthWorkload(seed=seed),
        sample_every=25,
        corunners=(),
        seed=seed,
    )
    peak = 0.0
    for _turn, unmapped, rss in samples:
        if rss:
            peak = max(peak, unmapped / rss)
    return peak


def render_sec62(result: Sec62Result, adversarial_ratio: float = None) -> str:
    """Render the §6.2 findings."""
    table = Table(
        ["Benchmark", "Peak unmapped reserved (% of footprint)"],
        title="Section 6.2: non-allocated pages within reservations "
        "(paper: never exceeds 0.2%)",
    )
    for name, peak in result.peaks().items():
        table.add_row(name, f"{peak:.3f}%")
    body = table.render()
    if adversarial_ratio is not None:
        body += (
            f"\nAdversarial stride-8 application: {adversarial_ratio:.1f}x "
            "its footprint held in unmapped reservations (paper: up to 7x)"
        )
    return body
