"""Tests for ScriptedWorkload, BrkOp handling, and config validation."""

import pytest

from repro import PlatformConfig, Simulation
from repro.config import (
    CacheConfig,
    GuestConfig,
    HostConfig,
    MachineConfig,
    PwcConfig,
    TlbConfig,
)
from repro.core.policy import EnablementPolicy
from repro.units import MB
from repro.workloads import (
    AccessOp,
    BrkOp,
    FreeOp,
    MmapOp,
    ScriptedWorkload,
)


def small_platform():
    return PlatformConfig(
        host=HostConfig(memory_bytes=64 * MB),
        guest=GuestConfig(memory_bytes=32 * MB),
    )


class TestScriptedWorkload:
    def test_iterable_source_replayable(self):
        w = ScriptedWorkload("s", [MmapOp("a", 4), AccessOp("a", 0)])
        assert list(w.ops()) == list(w.ops())
        assert w.footprint_pages == 4

    def test_footprint_derived_from_mmaps(self):
        w = ScriptedWorkload("s", [MmapOp("a", 4), MmapOp("b", 6)])
        assert w.footprint_pages == 10

    def test_callable_source_needs_footprint(self):
        with pytest.raises(ValueError):
            ScriptedWorkload("s", lambda: iter([]))

    def test_callable_source(self):
        def factory():
            yield MmapOp("a", 2)
            yield AccessOp("a", 0)

        w = ScriptedWorkload("s", factory, footprint_pages=2)
        assert len(list(w.ops())) == 2

    def test_touch_region_helper(self):
        w = ScriptedWorkload.touch_region("t", npages=5, sweeps=2)
        accesses = [op for op in w.ops() if isinstance(op, AccessOp)]
        assert len(accesses) == 10

    def test_touch_region_validation(self):
        with pytest.raises(ValueError):
            ScriptedWorkload.touch_region("t", npages=0)

    def test_runs_in_engine(self):
        sim = Simulation(small_platform())
        run = sim.add_workload(ScriptedWorkload.touch_region("t", 8))
        sim.run_until_finished(run)
        assert run.process.faults == 8


class TestBrkOp:
    def test_brk_region_usable(self):
        script = [
            BrkOp("heap", 8),
            *(AccessOp("heap", page, write=True) for page in range(8)),
            FreeOp("heap"),
        ]
        sim = Simulation(small_platform())
        run = sim.add_workload(ScriptedWorkload("b", script, footprint_pages=8))
        sim.run_until_finished(run)
        assert run.process.faults == 8
        assert run.process.rss_pages == 0

    def test_consecutive_brks_are_adjacent(self):
        script = [BrkOp("h1", 4), BrkOp("h2", 4)]
        sim = Simulation(small_platform())
        run = sim.add_workload(ScriptedWorkload("b", script, footprint_pages=8))
        sim.run_until_finished(run)
        h1 = run._regions["h1"]
        h2 = run._regions["h2"]
        assert h2.start_vpn == h1.end_vpn


class TestConfigValidation:
    def test_cache_config_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 0, 4, 1)
        with pytest.raises(ValueError):
            CacheConfig("x", 1024, 0, 1)

    def test_tlb_config_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TlbConfig("x", 10, 4)

    def test_pwc_config_rejects_negative(self):
        with pytest.raises(ValueError):
            PwcConfig(-1)

    def test_with_ptemagnet_preserves_fields(self):
        guest = GuestConfig(
            memory_bytes=64 * MB,
            reclaim_threshold=0.5,
            ptemagnet_reservation_order=4,
            pt_levels=5,
        )
        toggled = guest.with_ptemagnet(True)
        assert toggled.ptemagnet_enabled
        assert toggled.reclaim_threshold == 0.5
        assert toggled.ptemagnet_reservation_order == 4
        assert toggled.pt_levels == 5

    def test_platform_with_ptemagnet(self):
        platform = PlatformConfig()
        assert not platform.guest.ptemagnet_enabled
        assert platform.with_ptemagnet(True).guest.ptemagnet_enabled

    def test_frames_properties(self):
        assert HostConfig(memory_bytes=4 * MB).frames == 1024
        assert GuestConfig(memory_bytes=4 * MB).frames == 1024

    def test_table2_rows_reflect_kernel(self):
        rows = dict(PlatformConfig().with_ptemagnet(True).table2_rows())
        assert rows["Guest kernel"] == "PTEMagnet"

    def test_machine_describe(self):
        text = MachineConfig().describe()
        assert "LLC" in text and "STLB" in text


class TestEnablementPolicy:
    def test_zero_threshold_enables_all(self):
        policy = EnablementPolicy(0)
        assert policy.enabled_for(0)
        assert policy.enabled_for(1)

    def test_threshold_gates_small_limits(self):
        policy = EnablementPolicy(16 * MB)
        assert not policy.enabled_for(1 * MB)
        assert policy.enabled_for(16 * MB)
        assert policy.enabled_for(64 * MB)

    def test_unlimited_treated_as_big(self):
        policy = EnablementPolicy(16 * MB)
        assert policy.enabled_for(0)
