"""Radix page tables and the 1D page walker.

Models x86-64 4-level page tables exactly as the paper describes (§2.5):
each node is one physical frame holding 512 8-byte entries; translations
for 4KB pages live at the leaf level; a page walk is a serialized pointer
chase from the root to the leaf.
"""

from .pte import PteFlags, make_pte, pte_flags, pte_frame, pte_present
from .radix import PageTable, PageTableNode
from .walker import PageWalker, WalkResult

__all__ = [
    "PageTable",
    "PageTableNode",
    "PageWalker",
    "PteFlags",
    "WalkResult",
    "make_pte",
    "pte_flags",
    "pte_frame",
    "pte_present",
]
