"""Tests for architectural constants and address helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_page_geometry(self):
        assert units.PAGE_SIZE == 4096
        assert 1 << units.PAGE_SHIFT == units.PAGE_SIZE

    def test_cache_block_geometry(self):
        assert units.CACHE_BLOCK_SIZE == 64
        assert 1 << units.CACHE_BLOCK_SHIFT == units.CACHE_BLOCK_SIZE

    def test_ptes_per_cache_block_is_eight(self):
        # The constant the whole paper rests on.
        assert units.PTES_PER_CACHE_BLOCK == 8

    def test_reservation_is_one_pte_block(self):
        assert units.RESERVATION_PAGES == units.PTES_PER_CACHE_BLOCK
        assert units.RESERVATION_BYTES == 32 * 1024
        assert 1 << units.RESERVATION_ORDER == units.RESERVATION_PAGES

    def test_va_bits_is_48(self):
        assert units.VA_BITS == 48

    def test_pt_fanout(self):
        assert units.PTES_PER_NODE == 512
        assert units.PTES_PER_NODE * units.PTE_SIZE == units.PAGE_SIZE


class TestAddressHelpers:
    def test_page_number_and_base(self):
        addr = 5 * units.PAGE_SIZE + 123
        assert units.page_number(addr) == 5
        assert units.page_base(addr) == 5 * units.PAGE_SIZE
        assert units.page_offset(addr) == 123

    def test_block_number(self):
        assert units.block_number(0) == 0
        assert units.block_number(63) == 0
        assert units.block_number(64) == 1

    def test_reservation_group_helpers(self):
        assert units.reservation_group(0) == 0
        assert units.reservation_group(7) == 0
        assert units.reservation_group(8) == 1
        assert units.reservation_base_vpn(13) == 8
        assert units.reservation_slot(13) == 5

    def test_pte_address(self):
        assert units.pte_address(2, 0) == 2 * units.PAGE_SIZE
        assert units.pte_address(2, 3) == 2 * units.PAGE_SIZE + 24

    def test_pages_for_bytes(self):
        assert units.pages_for_bytes(0) == 0
        assert units.pages_for_bytes(1) == 1
        assert units.pages_for_bytes(units.PAGE_SIZE) == 1
        assert units.pages_for_bytes(units.PAGE_SIZE + 1) == 2

    def test_align_helpers(self):
        assert units.align_up(5, 8) == 8
        assert units.align_up(8, 8) == 8
        assert units.align_down(5, 8) == 0
        assert units.align_down(8, 8) == 8


class TestPtIndices:
    def test_zero(self):
        assert units.pt_indices(0) == (0, 0, 0, 0)

    def test_leaf_index_is_low_bits(self):
        assert units.pt_indices(5) == (0, 0, 0, 5)
        assert units.pt_indices(512) == (0, 0, 1, 0)

    def test_all_levels(self):
        vpn = (3 << 27) | (2 << 18) | (1 << 9) | 7
        assert units.pt_indices(vpn) == (3, 2, 1, 7)

    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_roundtrip(self, vpn):
        i4, i3, i2, i1 = units.pt_indices(vpn)
        rebuilt = (((i4 << 9 | i3) << 9 | i2) << 9) | i1
        assert rebuilt == vpn

    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_indices_in_range(self, vpn):
        assert all(0 <= i < 512 for i in units.pt_indices(vpn))

    def test_adjacent_pages_share_leaf_prefix(self):
        # Pages in the same 8-page group differ only in the low 3 bits of
        # the leaf index -> same PTE cache block.
        base = 0x12340
        indices = {units.pt_indices(base + i)[:3] for i in range(8)}
        assert len(indices) == 1
