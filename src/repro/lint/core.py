"""Core of the simulator-aware static-analysis pass (``simlint``).

The linter parses each file into an :mod:`ast` tree and runs every
registered :class:`Rule` over it. Rules are small, single-purpose checks
tailored to *this* codebase: the properties the reproduction's figures
rest on (deterministic replay, integer-exact address arithmetic, units
discipline) are not enforceable by generic linters, so they are encoded
here and enforced by a tier-1 test.

Suppressions
------------
A ``# simlint: disable=rule-a,rule-b`` comment trailing a line of code
suppresses those rules on that line only. The same comment on a line of
its own (a standalone comment) suppresses the rules for the whole file.
``disable=all`` suppresses every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Subpackages of ``repro`` whose code is "model code" for the units rule:
#: address arithmetic there must be expressed in ``repro.units`` constants.
UNITS_SCOPED_DIRS = frozenset(
    {"mem", "core", "pagetable", "cache", "tlb", "virt"}
)

#: Schema version of the JSON output (bump on incompatible change).
JSON_SCHEMA_VERSION = 1

_PRAGMA_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_\-,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``cycles``/``share`` are the profile-guided annotation: the measured
    cycles (and fraction of the whole profile) attributed to the hot
    region the finding sits in, filled in only when the run was given a
    ``--profile`` operand. They rank output but stay out of
    :attr:`message`, so ratchet baselines are profile-independent.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    cycles: int = 0
    share: float = 0.0

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def rank_key(self):
        """Profile-guided order: most measured cycles first, then location."""
        return (-self.cycles, self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.cycles:
            out["cycles"] = self.cycles
            out["share"] = round(self.share, 4)
        return out

    def render(self) -> str:
        base = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.cycles:
            return (
                f"{base} [under {self.cycles} modelled cycles, "
                f"{self.share:.0%} of profile]"
            )
        return base


class LintContext:
    """Everything a rule needs to inspect one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    @property
    def repro_subpackage(self) -> Optional[str]:
        """The ``repro`` subpackage this file belongs to, if inferable.

        ``src/repro/mem/buddy.py`` -> ``"mem"``; paths outside a ``repro``
        package (scratch files, snippets under test) return ``None``.
        """
        parts = PurePath(self.path).parts
        if "repro" in parts:
            index = parts.index("repro")
            if index + 2 < len(parts):  # repro/<sub>/<file>
                return parts[index + 1]
            return ""  # directly under repro/
        return None

    @property
    def in_units_scope(self) -> bool:
        """True when the units-discipline rule applies to this file.

        Files outside any ``repro`` package are treated as in scope so
        snippets can exercise the rule; ``repro`` subpackages outside
        :data:`UNITS_SCOPED_DIRS` (workloads, experiments, ...) are not.
        """
        sub = self.repro_subpackage
        return sub is None or sub in UNITS_SCOPED_DIRS

    @property
    def is_test_code(self) -> bool:
        """True for pytest files, where bare ``assert`` is the idiom."""
        path = PurePath(self.path)
        return path.name.startswith("test_") or "tests" in path.parts

    def finding(self, node: ast.AST, rule: "Rule", message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.name,
            message=message,
        )


class Rule:
    """One named check. Subclasses implement :meth:`check`."""

    #: Unique rule identifier used in output and suppression pragmas.
    name: str = ""
    #: Rule family (determinism, units, address-math, api-hygiene).
    category: str = ""
    #: One-line human description (shown by ``--list-rules``).
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProgramRule(Rule):
    """A whole-program rule: runs once over the joined call graph.

    Program rules contribute nothing in the per-file phase; after every
    file has been parsed (possibly in parallel under ``--jobs``), each
    one sees the :class:`repro.lint.ipa.Program` and its
    :class:`repro.lint.ipa.Summaries` exactly once. Findings still
    anchor to a (path, line) and respect that file's pragmas.

    A rule that sets :attr:`uses_profile` additionally receives the
    loaded ``--profile`` tree (a
    :class:`~repro.obs.profile.ProfileNode`, or ``None``) as a keyword
    argument, so it can annotate findings with measured cycles.
    """

    #: True when :meth:`check_program` accepts a ``profile=`` keyword.
    uses_profile: bool = False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program, summaries) -> Iterator[Finding]:
        raise NotImplementedError


#: Registry of every known rule, keyed by rule name, insertion-ordered.
RULES: Dict[str, Rule] = {}

#: Retired rule names still accepted in pragmas and ``--disable``,
#: mapped to the rule that subsumed them.
RULE_ALIASES: Dict[str, str] = {}


def register(rule_cls):
    """Class decorator adding a rule (as a singleton) to the registry."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule.name in RULES or rule.name in RULE_ALIASES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    RULES[rule.name] = rule
    return rule_cls


def register_alias(alias: str, canonical: str) -> None:
    """Keep a retired rule id working as a synonym for ``canonical``.

    Suppression pragmas and ``--disable`` entries naming the alias apply
    to the canonical rule, so existing configurations keep working.
    """
    if alias in RULES or alias in RULE_ALIASES:
        raise ValueError(f"duplicate rule name {alias!r}")
    if canonical not in RULES:
        raise ValueError(f"alias {alias!r} targets unknown rule {canonical!r}")
    RULE_ALIASES[alias] = canonical


def canonical_rule_name(name: str) -> str:
    """Resolve a possibly-aliased rule name to its canonical id."""
    return RULE_ALIASES.get(name, name)


def iter_rules() -> Iterator[Rule]:
    """Yield every registered rule, in registration order."""
    return iter(RULES.values())


# ---------------------------------------------------------------------- #
# Shared AST helpers used by several rules
# ---------------------------------------------------------------------- #

def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute chain, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost identifier of a name/attribute chain, if any."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def name_tokens(node: ast.AST) -> Set[str]:
    """Lower-case snake_case tokens of every identifier inside ``node``."""
    tokens: Set[str] = set()
    for child in ast.walk(node):
        name = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        if name:
            tokens.update(part for part in name.lower().split("_") if part)
    return tokens


# ---------------------------------------------------------------------- #
# Suppression pragmas
# ---------------------------------------------------------------------- #

def _parse_pragmas(lines: Sequence[str]):
    """Return (file-level disabled rule names, per-line disabled names)."""
    file_disabled: Set[str] = set()
    line_disabled: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(line)
        if not match:
            continue
        names = {
            part.strip() for part in match.group(1).split(",") if part.strip()
        }
        if line.lstrip().startswith("#"):
            file_disabled |= names
        else:
            line_disabled.setdefault(lineno, set()).update(names)
    return file_disabled, line_disabled


def _suppressed(finding: Finding, file_disabled, line_disabled) -> bool:
    file_disabled = {canonical_rule_name(name) for name in sorted(file_disabled)}
    if "all" in file_disabled or finding.rule in file_disabled:
        return True
    on_line = {
        canonical_rule_name(name)
        for name in sorted(line_disabled.get(finding.line, ()))
    }
    return "all" in on_line or finding.rule in on_line


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #

def _check_one_file(source: str, path: str, disabled: Set[str]):
    """Per-file phase: parse, run per-file rules, extract IPA facts.

    Returns ``(findings, facts)`` where ``facts`` is ``None`` when the
    file does not parse. Everything returned is picklable, so this is
    also the ``--jobs`` worker payload.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            None,
        )
    from .ipa import extract_facts  # lazy: ipa imports this module

    ctx = LintContext(path, source, tree)
    findings = [
        finding
        for rule in iter_rules()
        if rule.name not in disabled
        for finding in rule.check(ctx)
    ]
    file_disabled, line_disabled = _parse_pragmas(ctx.lines)
    findings = [
        finding
        for finding in findings
        if not _suppressed(finding, file_disabled, line_disabled)
    ]
    facts = extract_facts(
        path,
        tree,
        file_disabled=frozenset(file_disabled),
        line_disabled={
            line: frozenset(names) for line, names in line_disabled.items()
        },
    )
    return findings, facts


def _lint_one_worker(path: str, disabled):
    """``--jobs`` process-pool entry point (module-level: picklable)."""
    source = Path(path).read_text(encoding="utf-8")
    return _check_one_file(source, path, set(disabled))


def _program_findings(
    facts_list, disabled: Set[str], profile=None
) -> List[Finding]:
    """Whole-program phase: run every :class:`ProgramRule` once."""
    from .ipa import Program, Summaries  # lazy: ipa imports this module

    facts_list = [facts for facts in facts_list if facts is not None]
    if not facts_list:
        return []
    program = Program(facts_list)
    summaries = Summaries(program)
    by_path = {facts.path: facts for facts in facts_list}
    findings: List[Finding] = []
    for rule in iter_rules():
        if not isinstance(rule, ProgramRule) or rule.name in disabled:
            continue
        if rule.uses_profile:
            produced = rule.check_program(program, summaries, profile=profile)
        else:
            produced = rule.check_program(program, summaries)
        for finding in produced:
            facts = by_path.get(finding.path)
            if facts is not None and _suppressed(
                finding, facts.file_disabled, facts.line_disabled
            ):
                continue
            findings.append(finding)
    return findings


def _finish(findings: List[Finding], profile) -> List[Finding]:
    """Final ordering: location order, or cycle rank under a profile."""
    if profile is not None:
        return sorted(findings, key=Finding.rank_key)
    return sorted(findings, key=Finding.sort_key)


def lint_source(
    source: str,
    path: str = "<string>",
    disabled: Iterable[str] = (),
    profile=None,
) -> List[Finding]:
    """Lint one source string; returns sorted findings.

    Program rules run over a single-module program, so self-contained
    fixtures exercise them too. ``profile`` (a
    :class:`~repro.obs.profile.ProfileNode`) enables profile-guided
    annotation and ranking, exactly as ``--profile`` does on the CLI.
    """
    disabled = {canonical_rule_name(name) for name in sorted(disabled)}
    findings, facts = _check_one_file(source, path, disabled)
    findings = findings + _program_findings([facts], disabled, profile=profile)
    return _finish(findings, profile)


def lint_file(path, disabled: Iterable[str] = ()) -> List[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"), str(path), disabled=disabled
    )


def collect_files(paths: Iterable) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            out.update(
                candidate
                for candidate in entry.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            out.add(entry)
    return sorted(out)


def lint_paths(
    paths: Iterable,
    disabled: Iterable[str] = (),
    jobs: int = 1,
    profile=None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings.

    ``jobs > 1`` fans the per-file phase out over spawn processes (same
    idiom as :func:`repro.parallel.run_cells`: tasks submitted in sorted
    file order, results consumed in submission order, so output is
    byte-identical at any job count). The whole-program phase always
    runs single-process over the collected facts; ``profile`` (a loaded
    :class:`~repro.obs.profile.ProfileNode`) feeds it for profile-guided
    annotation, and ranks the final output by measured cycles -- both
    independent of ``jobs``, so byte-identity holds with a profile too.
    """
    disabled = {canonical_rule_name(name) for name in sorted(disabled)}
    files = [str(file_path) for file_path in collect_files(paths)]
    results = []
    if jobs <= 1 or len(files) <= 1:
        for file_path in files:
            results.append(_lint_one_worker(file_path, tuple(sorted(disabled))))
    else:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(files)), mp_context=context
        ) as pool:
            futures = [
                pool.submit(_lint_one_worker, file_path, tuple(sorted(disabled)))
                for file_path in files
            ]
            for future in futures:
                results.append(future.result())
    findings = [finding for file_findings, _ in results for finding in file_findings]
    findings.extend(
        _program_findings(
            [facts for _, facts in results], disabled, profile=profile
        )
    )
    return _finish(findings, profile)
