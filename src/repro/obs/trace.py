"""Tracepoint registry and the global tracer.

Modeled on Linux tracepoints/ftrace: emit sites are declared once at
module import time (``_TP_SPLIT = tracepoint("buddy.split")``) and fire
only when their *category* (the part before the first dot) is enabled
AND at least one sink is attached. The disabled fast path is a single
attribute read (``tp.enabled``), so instrumentation threaded through the
simulator's hot layers costs nothing measurable when tracing is off --
enforced by ``benchmarks/test_obs_overhead.py``.

Timestamps are *modelled cycles*: the simulation engine advances the
tracer clock by the cycles of every executed memory operation while
tracing is active, so exported traces render walks and faults on the
same timeline the paper's figures reason about. Scheduler turns are
tracked alongside as a coarse second axis.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError

#: Tracepoint names are dotted lower-case paths: ``layer.event`` (one or
#: more dots). The lint rule ``tracepoint-naming`` enforces the same
#: shape statically on literal registrations.
TRACEPOINT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


@dataclass
class TraceEvent:
    """One recorded event: where on the modelled timeline, what, and why.

    ``ts`` is the tracer's modelled-cycle clock at emit time, ``turn``
    the scheduler turn, ``seq`` a per-tracer monotone sequence number
    that totally orders events sharing a timestamp.
    """

    seq: int
    ts: int
    turn: int
    name: str
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def category(self) -> str:
        return self.name.split(".", 1)[0]

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "turn": self.turn,
            "name": self.name,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceEvent":
        return cls(
            seq=int(payload["seq"]),
            ts=int(payload["ts"]),
            turn=int(payload["turn"]),
            name=str(payload["name"]),
            args=dict(payload.get("args") or {}),
        )


class Tracepoint:
    """One named emit site.

    ``enabled`` is pre-computed by the tracer whenever sinks or category
    masks change, so emit sites pay only ``if tp.enabled:`` when tracing
    is off. Always guard the call site itself -- building the kwargs
    dict is the expensive part::

        if _TP_SPLIT.enabled:
            _TP_SPLIT.emit(base=base, order=order)
    """

    __slots__ = ("name", "category", "enabled", "_tracer")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self.category = name.split(".", 1)[0]
        self.enabled = False
        self._tracer = tracer

    def emit(self, **args: object) -> None:
        """Record one event (no-op while the tracepoint is disabled)."""
        if self.enabled:
            self._tracer.record(self.name, args)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"Tracepoint({self.name!r}, {state})"


class Tracer:
    """Registry of tracepoints plus the modelled-cycle clock and sinks."""

    def __init__(self) -> None:
        self._tracepoints: Dict[str, Tracepoint] = {}
        self._enabled_categories: List[str] = []
        self._sinks: List[object] = []
        #: True iff at least one sink is attached and one category is
        #: enabled; the engine's per-access clock advance is guarded on
        #: this single attribute.
        self.active = False
        #: Modelled-cycle clock (advanced by the simulation engine).
        self.now = 0
        #: Current scheduler turn (set by the simulation engine).
        self.turn = 0
        #: When non-zero, every new :class:`~repro.sim.engine.Simulation`
        #: auto-attaches the standard periodic sampler at this cycle
        #: interval (the runner's ``--sample-interval`` knob).
        self.sample_interval_cycles = 0
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def tracepoint(self, name: str) -> Tracepoint:
        """Create-or-get the tracepoint called ``name``.

        Names must be dotted lower-case paths (``layer.event``); the
        category is the first component. Registration is idempotent so
        module reloads and dynamic sites (the sampler) share instances.
        """
        existing = self._tracepoints.get(name)
        if existing is not None:
            return existing
        if not TRACEPOINT_NAME_RE.match(name):
            raise ReproError(
                f"invalid tracepoint name {name!r}; use dotted lower-case "
                "'layer.event' naming"
            )
        tp = Tracepoint(name, self)
        tp.enabled = self._category_enabled(tp.category) and bool(self._sinks)
        self._tracepoints[name] = tp
        return tp

    def catalog(self) -> Dict[str, bool]:
        """Mapping of every registered tracepoint name -> enabled, sorted."""
        return {
            name: self._tracepoints[name].enabled
            for name in sorted(self._tracepoints)
        }

    # ------------------------------------------------------------------ #
    # Enable masks and sinks
    # ------------------------------------------------------------------ #

    def _category_enabled(self, category: str) -> bool:
        return "*" in self._enabled_categories or category in self._enabled_categories

    def _refresh(self) -> None:
        self.active = bool(self._sinks) and bool(self._enabled_categories)
        has_sinks = bool(self._sinks)
        for tp in self._tracepoints.values():
            tp.enabled = has_sinks and self._category_enabled(tp.category)

    def enable(self, *categories: str) -> None:
        """Enable tracing for ``categories`` (``"*"`` = everything)."""
        for category in categories:
            if category not in self._enabled_categories:
                self._enabled_categories.append(category)
        self._refresh()

    def disable(self, *categories: str) -> None:
        """Disable ``categories``; with no arguments, disable everything."""
        if not categories:
            self._enabled_categories.clear()
        else:
            for category in categories:
                if category in self._enabled_categories:
                    self._enabled_categories.remove(category)
        self._refresh()

    def enabled_categories(self) -> Tuple[str, ...]:
        return tuple(self._enabled_categories)

    def attach(self, sink: object) -> None:
        """Add a sink; every recorded event is written to all sinks."""
        if sink not in self._sinks:
            self._sinks.append(sink)
        self._refresh()

    def detach(self, sink: object) -> None:
        """Remove a previously attached sink (no-op if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)
        self._refresh()

    # ------------------------------------------------------------------ #
    # Clock + recording
    # ------------------------------------------------------------------ #

    def advance(self, cycles: int) -> None:
        """Advance the modelled-cycle clock (engine hot path, guarded)."""
        self.now += cycles

    def record(self, name: str, args: Dict[str, object]) -> None:
        """Stamp and fan an event out to every sink."""
        event = TraceEvent(
            seq=self._seq, ts=self.now, turn=self.turn, name=name, args=args
        )
        self._seq += 1
        for sink in self._sinks:
            sink.write(event)

    def reset(self) -> None:
        """Detach sinks, disable all categories, and zero the clock.

        Registered tracepoints survive (module-level emit sites keep
        their bound objects); they are all switched off.
        """
        self._sinks.clear()
        self._enabled_categories.clear()
        self.now = 0
        self.turn = 0
        self._seq = 0
        self.sample_interval_cycles = 0
        self._refresh()


#: The process-wide tracer every emit site binds to.
TRACER = Tracer()


def tracepoint(name: str) -> Tracepoint:
    """Declare (or fetch) a tracepoint on the global tracer."""
    return TRACER.tracepoint(name)


class capture:
    """Context manager: capture events into a sink, restoring state after.

    ::

        from repro.obs import capture, RingBufferSink

        with capture("buddy", "fault") as sink:
            sim.run_until_finished(run)
        events = sink.events()

    With no categories, everything (``"*"``) is captured. A custom sink
    (e.g. a :class:`~repro.obs.sinks.JsonlSink`) can be supplied.
    """

    def __init__(self, *categories: str, sink: Optional[object] = None) -> None:
        from .sinks import RingBufferSink

        self.categories: Iterable[str] = categories or ("*",)
        self.sink = sink if sink is not None else RingBufferSink()
        self._prior_categories: Tuple[str, ...] = ()

    def __enter__(self):
        self._prior_categories = TRACER.enabled_categories()
        TRACER.attach(self.sink)
        TRACER.enable(*self.categories)
        return self.sink

    def __exit__(self, exc_type, exc, tb) -> None:
        TRACER.detach(self.sink)
        TRACER.disable()
        if self._prior_categories:
            TRACER.enable(*self._prior_categories)
