"""Retired: ``fastpath-invalidation`` is now a mirror-coherence contract.

The original rule checked one function body at a time: a guest
page-table mutation (``page_table.unmap`` / ``unmap_huge`` / ``update``)
with no TLB shootdown (``_notify_unmap`` / ``invalidate`` / ``flush``)
in the *same* function was flagged. That pairing is exactly the
``guest-pt-shootdown`` contract in :mod:`repro.lint.ipa.contracts`,
which the whole-program ``mirror-coherence`` rule checks over the call
graph -- it also sees mutations delegated through helpers, which the
per-function version could not.

The rule id survives as an alias: suppression pragmas
(``# simlint: disable=fastpath-invalidation``) and ``--disable``
entries naming it apply to ``mirror-coherence``, so existing
configurations keep working. The historical constants remain importable
for the same reason; the contract registry is their source of truth now.
"""

from __future__ import annotations

from ..core import register_alias
from ..ipa.contracts import GUEST_PT

#: Page-table methods that change or remove an existing translation.
MUTATORS = GUEST_PT.mutators.methods

#: Calls that count as reaching the shootdown/invalidation machinery.
INVALIDATION_HOOKS = frozenset(
    name for pattern in GUEST_PT.invalidators for name in pattern.methods
)

#: Receiver names identifying a *guest* page table (historical shape;
#: the contract matches receiver tokens {"page", "table"} instead).
GUEST_PT_RECEIVERS = frozenset({"page_table"})

register_alias("fastpath-invalidation", "mirror-coherence")
