"""Determinism rules: the simulator must replay bit-identically per seed.

Every random draw must come from a seeded :class:`random.Random` instance
threaded through the call graph (the engine owns the root RNG); wall-clock
reads and unordered-set iteration both smuggle nondeterminism into model
state and results.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..core import Finding, LintContext, Rule, register, root_name

#: ``time`` module functions that read the wall clock / epoch.
_WALL_CLOCK_TIME_FUNCS = frozenset({"time", "time_ns"})
#: ``time`` module functions that are fine (monotonic, for elapsed spans).
_ALLOWED_TIME_FUNCS = frozenset(
    {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
     "process_time", "process_time_ns", "sleep"}
)
#: ``datetime``/``date`` constructors that read the current time.
_DATETIME_NOW_FUNCS = frozenset({"now", "utcnow", "today"})


def _import_aliases(tree: ast.Module, module: str):
    """Aliases under which ``module`` and its members are visible.

    Returns ``(module_aliases, member_aliases)`` where ``member_aliases``
    maps local name -> original member name for ``from module import ...``.
    """
    module_aliases: Set[str] = set()
    member_aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    module_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                member_aliases[alias.asname or alias.name] = alias.name
    return module_aliases, member_aliases


@register
class GlobalRandomRule(Rule):
    """Flag draws from the process-global ``random`` module RNG."""

    name = "global-random"
    category = "determinism"
    description = (
        "model code must draw from a seeded random.Random instance, never "
        "the process-global random module functions or an unseeded Random()"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        module_aliases, member_aliases = _import_aliases(ctx.tree, "random")
        if not module_aliases and not member_aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
            ):
                called = func.attr
            elif isinstance(func, ast.Name) and func.id in member_aliases:
                called = member_aliases[func.id]
            if called is None:
                continue
            if called == "Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        node,
                        self,
                        "unseeded random.Random(): seeds the RNG from the "
                        "OS; pass an explicit seed",
                    )
            elif called == "SystemRandom":
                yield ctx.finding(
                    node, self, "random.SystemRandom() is never reproducible"
                )
            else:
                yield ctx.finding(
                    node,
                    self,
                    f"call to process-global random.{called}(); use a "
                    "seeded random.Random instance instead",
                )


@register
class WallClockRule(Rule):
    """Flag wall-clock reads (``time.time``, ``datetime.now``) in model code."""

    name = "wall-clock"
    category = "determinism"
    description = (
        "wall-clock reads (time.time, datetime.now) leak host time into the "
        "simulation; use time.perf_counter for elapsed spans"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        time_aliases, time_members = _import_aliases(ctx.tree, "time")
        dt_module_aliases, dt_members = _import_aliases(ctx.tree, "datetime")
        # Classes imported from datetime whose .now()/.today() read the clock.
        dt_class_aliases = {
            local
            for local, original in dt_members.items()
            if original in ("datetime", "date")
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                value = func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in time_aliases
                    and func.attr in _WALL_CLOCK_TIME_FUNCS
                ):
                    yield ctx.finding(
                        node,
                        self,
                        f"time.{func.attr}() reads the wall clock; use "
                        "time.perf_counter() for elapsed-time measurement",
                    )
                elif func.attr in _DATETIME_NOW_FUNCS and (
                    (isinstance(value, ast.Name) and value.id in dt_class_aliases)
                    or (
                        isinstance(value, ast.Attribute)
                        and value.attr in ("datetime", "date")
                        and root_name(value) in dt_module_aliases
                    )
                ):
                    yield ctx.finding(
                        node,
                        self,
                        f"datetime .{func.attr}() reads the wall clock; "
                        "model code must not depend on the current date",
                    )
            elif isinstance(func, ast.Name):
                original = time_members.get(func.id)
                if original in _WALL_CLOCK_TIME_FUNCS:
                    yield ctx.finding(
                        node,
                        self,
                        f"time.{original}() reads the wall clock; use "
                        "time.perf_counter() for elapsed-time measurement",
                    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet"})


def _annotation_is_set(annotation: ast.AST) -> bool:
    """True for ``x: Set[int]`` / ``x: set`` style annotations."""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = None
    if isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Attribute):
        name = annotation.attr
    return name in _SET_ANNOTATIONS


def _scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``scope``, not descending into functions."""
    pending = list(
        scope.body if isinstance(scope, (ast.Module, ast.FunctionDef,
                                         ast.AsyncFunctionDef)) else []
    )
    while pending:
        stmt = pending.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                pending.append(child)


def _set_bindings(scope: ast.AST) -> Dict[str, bool]:
    """Name -> "every binding in this scope is a set expression".

    Names rebound to anything that is not provably a set (including
    loop targets and ``with ... as`` aliases) are mapped to ``False``
    so they never produce findings.
    """
    bindings: Dict[str, bool] = {}

    def bind(name: str, is_set: bool) -> None:
        bindings[name] = bindings.get(name, True) and is_set

    for stmt in _scope_statements(scope):
        if isinstance(stmt, ast.Assign):
            is_set = _is_set_expr(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bind(target.id, is_set)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            bind(element.id, False)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                if _annotation_is_set(stmt.annotation):
                    bind(stmt.target.id, True)
                elif stmt.value is not None:
                    bind(stmt.target.id, _is_set_expr(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    bind(node.id, False)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    bind(item.optional_vars.id, False)
    return bindings


@register
class SetOrderRule(Rule):
    """Flag result-ordering derived from unordered set iteration."""

    name = "set-order"
    category = "determinism"
    description = (
        "iterating a set (literal or a variable every binding of which "
        "is a set) produces hash-dependent order; sort before any "
        "iteration whose order can reach results"
    )

    _MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        module_bindings = _set_bindings(ctx.tree)
        yield from self._check_scope(ctx, ctx.tree, module_bindings)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bindings = dict(module_bindings)
                # Parameters and local rebinds shadow module names.
                args = node.args
                params = (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
                for param in params:
                    bindings[param.arg] = False
                bindings.update(_set_bindings(node))
                yield from self._check_scope(ctx, node, bindings)

    def _check_scope(
        self, ctx: LintContext, scope: ast.AST, bindings: Dict[str, bool]
    ) -> Iterator[Finding]:
        # _scope_statements already yields every nested statement of the
        # scope (and only this scope), so per statement only its direct
        # expression children need walking: expressions cannot contain
        # further statements.
        for stmt in _scope_statements(scope):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self._check_iterable(ctx, stmt.iter, bindings)
            for child in ast.iter_child_nodes(stmt):
                if not isinstance(child, ast.expr):
                    continue
                for node in ast.walk(child):
                    if isinstance(
                        node,
                        (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp),
                    ):
                        for gen in node.generators:
                            yield from self._check_iterable(
                                ctx, gen.iter, bindings
                            )
                    elif (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in self._MATERIALIZERS
                        and node.args
                    ):
                        yield from self._check_iterable(
                            ctx, node.args[0], bindings
                        )

    def _check_iterable(
        self, ctx: LintContext, iterable: ast.expr, bindings: Dict[str, bool]
    ) -> Iterator[Finding]:
        if _is_set_expr(iterable):
            yield ctx.finding(
                iterable,
                self,
                "iteration over an unordered set; wrap in "
                "sorted(...) so replay order is deterministic",
            )
        elif (
            isinstance(iterable, ast.Name)
            and bindings.get(iterable.id, False)
        ):
            yield ctx.finding(
                iterable,
                self,
                f"iteration over set variable '{iterable.id}'; wrap "
                "in sorted(...) so replay order is deterministic",
            )
