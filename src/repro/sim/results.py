"""Result records produced by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..metrics.counters import PerfCounters
from ..os.kernel import KernelStats
from ..virt.hypervisor import HostStats


@dataclass
class RunResult:
    """Measurement of one workload run."""

    name: str
    counters: PerfCounters
    rss_pages: int
    faults_total: int
    reservation_hits: int
    ops_executed: int

    @property
    def cycles(self) -> int:
        """Modelled execution time (measured window) in cycles."""
        return self.counters.cycles


@dataclass
class SimulationResult:
    """Everything one simulation produced."""

    runs: List[RunResult]
    kernel_stats: KernelStats
    host_stats: HostStats
    turns: int
    notes: List[str] = field(default_factory=list)

    def run(self, name: str) -> Optional[RunResult]:
        """Look up one run's result by workload name."""
        for run in self.runs:
            if run.name == name:
                return run
        return None
