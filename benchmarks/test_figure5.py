"""Bench: regenerate Figure 5 -- host-PT fragmentation with objdet.

Reproduction targets:
* the default kernel's fragmentation metric is well above 1 for every
  benchmark (colocation scatters hPTEs);
* PTEMagnet pins the metric at ~1 for every benchmark (paper: "reduces
  fragmentation in the host PT to almost 1 for all evaluated benchmarks").
"""

from conftest import emit_snapshots, run_once

from repro.experiments import render_figure5, run_figure5
from repro.experiments.runner import figure5_snapshots


def test_figure5(benchmark, platform, seed):
    result = run_once(benchmark, run_figure5, platform, seed=seed)
    print()
    print(render_figure5(result))
    emit_snapshots("figure5", figure5_snapshots(result))

    assert len(result.fragmentation) == 8
    for name, (default, ptemagnet) in result.fragmentation.items():
        assert default > 2.5, f"{name}: default kernel should be fragmented"
        assert ptemagnet < 1.2, f"{name}: PTEMagnet should pin metric at ~1"
        assert ptemagnet < default
