"""Three-level inclusive cache hierarchy with per-stream accounting.

All simulated memory traffic -- application data, guest PT accesses, host
PT accesses -- flows through one shared hierarchy, so PTEs naturally
contend with data for capacity (the effect §3.3 highlights). Every access
carries a *stream tag* (``"data"``, ``"gpt"``, ``"hpt"``, ...) so the
experiments can report, per stream, how many accesses were served by each
level -- the simulator's equivalent of the paper's perf counters such as
"host page table accesses served by main memory".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from ..config import MachineConfig
from ..obs.trace import tracepoint
from ..units import CACHE_BLOCK_SHIFT
from .set_assoc import SetAssociativeCache

_tp_miss = tracepoint("cache.miss")


class AccessOutcome(enum.Enum):
    """Which level of the hierarchy served an access."""

    L1 = "L1"
    L2 = "L2"
    LLC = "LLC"
    MEMORY = "memory"

    # Members are singletons, so identity hashing is equivalent to the
    # default Enum hash for every dict keyed on outcomes -- and it is a
    # C-level slot instead of a Python call, which matters because the
    # hierarchy bumps ``served_by[outcome]`` on every simulated access.
    __hash__ = object.__hash__


@dataclass
class StreamCounters:
    """Per-stream tally of where accesses were served and cycles spent."""

    accesses: int = 0
    cycles: int = 0
    served_by: Dict[AccessOutcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in AccessOutcome}
    )

    @property
    def memory_accesses(self) -> int:
        """Accesses in this stream served by main memory."""
        return self.served_by[AccessOutcome.MEMORY]

    @property
    def memory_fraction(self) -> float:
        """Fraction of this stream's accesses served by main memory."""
        return self.memory_accesses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """L1 + L2 + LLC with a flat DRAM behind them.

    The model is inclusive with fill-on-miss at every level and true-LRU
    within each level. Latency of an access is the hit latency of the level
    that served it (DRAM latency for full misses) -- lookup costs of the
    levels along the way are folded into those per-level figures, which is
    the standard first-order timing model.
    """

    def __init__(
        self,
        config: MachineConfig,
        shared_llc: "SetAssociativeCache" = None,
        optimized: bool = True,
    ) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        # L1/L2 are per-core private; the LLC may be shared between cores
        # (pass the same instance to every per-core hierarchy), which is
        # how co-runner cache contention reaches the measured benchmark.
        self.llc = shared_llc if shared_llc is not None else SetAssociativeCache(config.llc)
        self.streams: Dict[str, StreamCounters] = {}
        #: Which level served the most recent access; read by the
        #: cycle-attribution profiler to key walk steps by serving level.
        self.last_outcome: AccessOutcome = AccessOutcome.L1
        # Pre-resolved latencies: the hot path charges these without
        # re-reading the config dataclasses on every access.
        self._l1_latency = self.l1.config.latency_cycles
        self._l2_latency = self.l2.config.latency_cycles
        self._llc_latency = self.llc.config.latency_cycles
        self._memory_latency = config.memory_latency_cycles
        # Cached "data" StreamCounters; invalidated by reset_counters().
        self._data_counters: StreamCounters = None
        #: ``REPRO_NO_FASTPATH=1`` keeps the original layered probe-then-
        #: fill traversal as the reference implementation: instance-level
        #: rebinding, so the per-access mode check costs nothing.
        if not optimized:
            self.access_block = self._access_block_reference

    def counters(self, stream: str) -> StreamCounters:
        """Counters for ``stream`` (created on first use)."""
        counters = self.streams.get(stream)
        if counters is None:
            counters = StreamCounters()
            self.streams[stream] = counters
        return counters

    def access(self, addr: int, stream: str = "data") -> int:
        """Access byte address ``addr``; returns latency in cycles."""
        block = addr >> CACHE_BLOCK_SHIFT
        return self.access_block(block, stream)

    def access_block(self, block: int, stream: str = "data") -> int:
        """Access cache block ``block``; returns latency in cycles.

        Every level that misses is filled (inclusive hierarchy), so each
        level is visited once via
        :meth:`~repro.cache.set_assoc.SetAssociativeCache.access_fill`
        rather than probing on the way down and filling on the way back
        up -- same end state and counters, half the set lookups.
        """
        if self.l1.access_fill(block):
            outcome, latency = AccessOutcome.L1, self._l1_latency
        elif self.l2.access_fill(block):
            outcome, latency = AccessOutcome.L2, self._l2_latency
        elif self.llc.access_fill(block):
            outcome, latency = AccessOutcome.LLC, self._llc_latency
        else:
            outcome = AccessOutcome.MEMORY
            latency = self._memory_latency
            if _tp_miss.enabled:
                _tp_miss.emit(block=block, stream=stream)
        self.last_outcome = outcome
        counters = self.streams.get(stream)
        if counters is None:
            counters = self.counters(stream)
        counters.accesses += 1
        counters.cycles += latency
        counters.served_by[outcome] += 1
        return latency

    def _access_block_reference(self, block: int, stream: str = "data") -> int:
        """The original layered traversal: probe downward with
        :meth:`~repro.cache.set_assoc.SetAssociativeCache.access`, then
        fill upward with :meth:`~repro.cache.set_assoc.SetAssociativeCache.fill`.

        Kept verbatim as the ``REPRO_NO_FASTPATH=1`` reference
        implementation: it reaches exactly the same end state and counters
        as the folded path, which the speedup bench asserts byte-for-byte.
        """
        if self.l1.access(block):
            outcome, latency = AccessOutcome.L1, self.l1.latency
        elif self.l2.access(block):
            outcome, latency = AccessOutcome.L2, self.l2.latency
            self.l1.fill(block)
        elif self.llc.access(block):
            outcome, latency = AccessOutcome.LLC, self.llc.latency
            self.l2.fill(block)
            self.l1.fill(block)
        else:
            outcome = AccessOutcome.MEMORY
            latency = self.config.memory_latency_cycles
            self.llc.fill(block)
            self.l2.fill(block)
            self.l1.fill(block)
            if _tp_miss.enabled:
                _tp_miss.emit(block=block, stream=stream)
        self.last_outcome = outcome
        counters = self.counters(stream)
        counters.accesses += 1
        counters.cycles += latency
        counters.served_by[outcome] += 1
        return latency

    def access_data(self, addr: int) -> int:
        """Hot-path data access: ``access(addr, "data")`` with the
        all-levels-hit-in-L1 case inlined.

        The engine's translation fast path calls this for every TLB-hit
        access; an L1 hit is one set probe, an LRU refresh and three
        counter bumps -- byte-identical state transitions to the general
        path, minus the per-level dispatch.
        """
        block = addr >> CACHE_BLOCK_SHIFT
        l1 = self.l1
        ways = l1._sets[block % l1.num_sets]
        if block not in ways:
            return self.access_block(block, "data")
        del ways[block]
        ways[block] = None  # move to MRU position
        l1.hits += 1
        self.last_outcome = AccessOutcome.L1
        counters = self._data_counters
        if counters is None:
            counters = self._data_counters = self.counters("data")
        latency = self._l1_latency
        counters.accesses += 1
        counters.cycles += latency
        counters.served_by[AccessOutcome.L1] += 1
        return latency

    def flush(self) -> None:
        """Empty all levels (e.g. between measurement phases)."""
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()

    def reset_counters(self) -> None:
        """Zero per-stream counters, keeping cache contents warm."""
        self.streams.clear()
        self._data_counters = None

    def total_accesses(self) -> int:
        """Accesses across all streams."""
        return sum(c.accesses for c in self.streams.values())
