"""Periodic time-series sampling driven by the engine's turn loop.

A :class:`PeriodicSampler` registers named probes (callables over the
simulation) and samples them on a fixed cadence -- every N scheduler
turns, every N modelled cycles of the tracer clock, or both. Samples
land in in-memory :class:`TimeSeries` and, when tracing is enabled, are
also emitted through ``sample.*`` tracepoints so they ride along in the
recorded trace (the Chrome exporter turns them into counter tracks that
Perfetto plots directly).

This is the shared mechanism behind the runner's ``--sample-interval``
flag and the §6.2 occupancy series (:mod:`repro.experiments.sec62`);
it subsumes the older ad-hoc per-experiment sampling loops.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .trace import TRACER, Tracepoint

#: A probe reads one value (usually a number) from the simulation.
Probe = Callable[[object], object]

_PROBE_TOKEN_RE = re.compile(r"[^a-z0-9_]+")


@dataclass
class TimeSeries:
    """Samples of one probe: (turn, value) pairs."""

    name: str
    points: List[Tuple[int, float]] = field(default_factory=list)

    def values(self) -> List[float]:
        return [value for _turn, value in self.points]

    @property
    def peak(self) -> float:
        return max(self.values()) if self.points else 0.0

    @property
    def final(self) -> float:
        return self.points[-1][1] if self.points else 0.0


def probe_tracepoint_name(probe_name: str) -> str:
    """The ``sample.*`` tracepoint name carrying ``probe_name``'s samples."""
    token = _PROBE_TOKEN_RE.sub("_", probe_name.lower()).strip("_") or "probe"
    if not token[0].isalpha():
        token = "p_" + token
    return f"sample.{token}"


class PeriodicSampler:
    """Samples registered probes on a turn and/or cycle cadence.

    Register with :meth:`repro.sim.engine.Simulation.add_sampler` and the
    engine calls :meth:`on_turn` at every turn boundary; take a last
    explicit :meth:`sample` when the run stops (or use :meth:`run_until`,
    which does both).

    Parameters
    ----------
    simulation:
        The simulation to probe (duck-typed: needs ``turns`` and
        ``turn()``).
    every_turns:
        Sample whenever ``simulation.turns`` is a multiple of this.
    every_cycles:
        Sample whenever the tracer's modelled-cycle clock has advanced
        at least this far since the last sample. The clock only advances
        while tracing is active, so cycle cadence implies an attached
        sink (the runner wires this up for ``--trace``).
    """

    def __init__(
        self,
        simulation,
        every_turns: Optional[int] = None,
        every_cycles: Optional[int] = None,
    ) -> None:
        if every_turns is None and every_cycles is None:
            raise ValueError("need a turn and/or cycle sampling cadence")
        if every_turns is not None and every_turns <= 0:
            raise ValueError("turn cadence must be positive")
        if every_cycles is not None and every_cycles <= 0:
            raise ValueError("cycle cadence must be positive")
        self.simulation = simulation
        self.every_turns = every_turns
        self.every_cycles = every_cycles
        self.series: Dict[str, TimeSeries] = {}
        self.samples_taken = 0
        self._probes: Dict[str, Probe] = {}
        self._tracepoints: Dict[str, Tracepoint] = {}
        self._last_sample_cycles = TRACER.now

    def add_probe(self, name: str, probe: Probe) -> None:
        """Register a named probe (overwrites an existing name)."""
        self.series[name] = TimeSeries(name)
        self._probes[name] = probe
        self._tracepoints[name] = TRACER.tracepoint(probe_tracepoint_name(name))

    def sample(self) -> None:
        """Take one sample of every probe right now."""
        turn = self.simulation.turns
        for name, probe in self._probes.items():
            value = probe(self.simulation)
            self.series[name].points.append((turn, value))
            tp = self._tracepoints[name]
            if tp.enabled:
                tp.emit(probe=name, value=value)
        self.samples_taken += 1

    def on_turn(self) -> None:
        """Engine hook: sample if the cadence says this turn is due."""
        if (
            self.every_turns is not None
            and self.simulation.turns % self.every_turns == 0
        ):
            self.sample()
            self._last_sample_cycles = TRACER.now
            return
        if (
            self.every_cycles is not None
            and TRACER.now - self._last_sample_cycles >= self.every_cycles
        ):
            self._last_sample_cycles = TRACER.now
            self.sample()

    def run_until(
        self, done: Callable[[], bool], max_turns: int = 1_000_000
    ) -> None:
        """Advance the simulation until ``done()``; final sample included.

        The sampler must already be registered on the simulation (via
        ``add_sampler``) for the cadence samples to fire.
        """
        for _ in range(max_turns):
            if done():
                break
            self.simulation.turn()
        self.sample()


def standard_sampler(simulation, every_cycles: int) -> PeriodicSampler:
    """The default probe set behind the runner's ``--sample-interval``.

    Records the quantities the paper tracks over time: host-PT
    fragmentation (§3.2), the buddy free-list histogram (§2.4), PaRT
    occupancy (§6.2), free memory, and per-run cycle counts.
    """
    from ..mem.buddy import MAX_ORDER

    sampler = PeriodicSampler(simulation, every_cycles=every_cycles)
    sampler.add_probe(
        "free_fraction", lambda sim: sim.kernel.buddy.free_fraction
    )
    for order in range(MAX_ORDER + 1):
        sampler.add_probe(
            f"free_blocks_order{order}",
            lambda sim, _order=order: sim.kernel.buddy.free_blocks(_order),
        )
    sampler.add_probe("part_entries", _part_entries)
    sampler.add_probe("part_unmapped_pages", _part_unmapped_pages)
    sampler.add_probe("host_pt_fragmentation", _mean_fragmentation)
    sampler.add_probe("run_cycles", _total_run_cycles)
    sampler.add_probe("rss_pages", _total_rss_pages)
    return sampler


def _part_entries(sim) -> int:
    return sum(
        process.part.entry_count
        for process in sim.kernel.processes.values()
        if process.part is not None
    )


def _part_unmapped_pages(sim) -> int:
    return sum(
        process.part.unmapped_reserved_pages()
        for process in sim.kernel.processes.values()
        if process.part is not None
    )


def _mean_fragmentation(sim) -> float:
    from ..metrics.fragmentation import host_pt_fragmentation

    values = [
        host_pt_fragmentation(run.process)
        for run in sim.runs
        if run.process.alive
    ]
    values = [value for value in values if value]
    return sum(values) / len(values) if values else 0.0


def _total_run_cycles(sim) -> int:
    return sum(run.counters.cycles for run in sim.runs)


def _total_rss_pages(sim) -> int:
    return sum(run.process.rss_pages for run in sim.runs if run.process.alive)
