"""Fast integration tests of the figure/table harnesses.

Each harness runs with a minimal benchmark list / small platform so the
full pipeline (pre-churn, phase gating, paired runs, rendering) is
exercised inside the unit suite; the full-scale versions live under
``benchmarks/``.
"""

import pytest

from repro.config import GuestConfig, HostConfig, PlatformConfig
from repro.experiments import (
    render_figure5,
    render_figure6,
    render_figure7,
    render_sec62,
    run_figure5,
    run_figure6,
    run_figure7,
    run_sec62,
)
from repro.units import MB


@pytest.fixture(scope="module")
def platform():
    return PlatformConfig(
        host=HostConfig(memory_bytes=128 * MB),
        guest=GuestConfig(memory_bytes=64 * MB),
    )


class TestFigureHarnessesSmall:
    def test_figure5_single_benchmark(self, platform):
        result = run_figure5(platform, benchmarks=("leela",))
        assert "leela" in result.fragmentation
        default, magnet = result.fragmentation["leela"]
        assert magnet <= default
        assert "leela" in render_figure5(result)

    def test_figure6_single_benchmark(self, platform):
        result = run_figure6(
            platform,
            benchmarks=("leela",),
            include_low_pressure=False,
        )
        assert set(result.improvements) == {"leela"}
        assert result.geomean == pytest.approx(
            result.improvements["leela"]
        )
        assert "Geomean" in render_figure6(result)

    def test_figure7_single_benchmark(self, platform):
        result = run_figure7(platform, benchmarks=("leela",))
        assert set(result.improvements) == {"leela"}
        assert "Geomean" in render_figure7(result)

    def test_sec62_single_benchmark(self, platform):
        result = run_sec62(platform, benchmarks=("leela",), sample_every=25)
        assert "leela" in result.samples
        assert result.peak_overhead_percent("leela") < 20.0
        assert "leela" in render_sec62(result)

    def test_sec62_missing_benchmark_peak_is_zero(self):
        from repro.experiments.sec62 import Sec62Result

        assert Sec62Result().peak_overhead_percent("ghost") == 0.0
