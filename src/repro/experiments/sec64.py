"""§6.4: PTEMagnet's effect on memory-allocation latency.

The paper's microbenchmark allocates a 60GB array and touches each page
once, timing the run with and without PTEMagnet. PTEMagnet replaces 7 of
every 8 buddy-allocator calls with PaRT look-ups, so allocation gets
marginally *faster* (-0.5% in the paper) -- the reservation mechanism is
overhead-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..config import PlatformConfig
from ..sim.engine import Simulation
from ..workloads.base import MemoryOp, MmapOp, PhaseOp, Workload, WorkloadPhase
from ..workloads.synth import sequential_touch
from .common import OPS_PER_SLICE


class TouchOnceWorkload(Workload):
    """Allocate one huge array and touch every page exactly once."""

    def __init__(self, npages: int = 30000, seed: int = 0) -> None:
        super().__init__("touch-once", seed)
        self.npages = npages

    @property
    def footprint_pages(self) -> int:
        return self.npages

    def ops(self) -> Iterator[MemoryOp]:
        yield MmapOp("array", self.npages)
        yield PhaseOp(WorkloadPhase.COMPUTE)
        yield from sequential_touch("array", self.npages)
        yield PhaseOp(WorkloadPhase.DONE)


@dataclass
class Sec64Result:
    """Cycles of the allocation microbenchmark under both kernels."""

    default_cycles: int
    ptemagnet_cycles: int
    npages: int

    @property
    def change_percent(self) -> float:
        """Signed change; the paper reports -0.5% (PTEMagnet faster)."""
        if self.default_cycles == 0:
            return 0.0
        return (
            (self.ptemagnet_cycles - self.default_cycles)
            / self.default_cycles
            * 100.0
        )


def _measure(platform: PlatformConfig, npages: int, seed: int) -> int:
    sim = Simulation(platform)
    sim.scheduler.ops_per_slice = OPS_PER_SLICE
    run = sim.add_workload(TouchOnceWorkload(npages, seed))
    run.start_measurement()
    sim.run_until_finished(run)
    return sim.result_for(run).counters.cycles


def run_sec64(
    platform: PlatformConfig = None, npages: int = 30000, seed: int = 0
) -> Sec64Result:
    """Run the allocation microbenchmark under both kernels.

    ``npages`` scales the paper's 60GB array to the simulated guest (the
    array must fit in guest RAM alongside the kernel's own allocations).
    """
    platform = platform or PlatformConfig()
    default_cycles = _measure(platform.with_ptemagnet(False), npages, seed)
    magnet_cycles = _measure(platform.with_ptemagnet(True), npages, seed)
    return Sec64Result(default_cycles, magnet_cycles, npages)


def render_sec64(result: Sec64Result) -> str:
    """Render the §6.4 finding."""
    return (
        "Section 6.4: allocation-latency microbenchmark "
        f"({result.npages} pages touched once)\n"
        f"default kernel: {result.default_cycles} cycles\n"
        f"PTEMagnet:      {result.ptemagnet_cycles} cycles\n"
        f"change: {result.change_percent:+.2f}% "
        "(paper: -0.5%, i.e. PTEMagnet slightly faster)"
    )
