"""Property-based stateful testing of the guest kernel.

A hypothesis rule-based state machine drives random sequences of the
kernel's public operations -- process creation/exit, mmap, page faults,
partial munmap, fork, COW writes, reservation reclaim -- against every
allocator mode, and checks global invariants after each step:

* frame conservation: free + allocated-to-someone == total;
* no frame is mapped by two processes unless COW-shared with a refcount;
* buddy free lists stay aligned and disjoint (allocator self-check);
* PTEMagnet: every live reservation's unmapped frames are RESERVED and
  not mapped anywhere; PaRT entry counts match tree contents;
* mapped page counts equal page-table contents.
"""

import random

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.config import GuestConfig, MachineConfig
from repro.errors import OutOfMemoryError, SegmentationFault
from repro.mem.physical import FrameState
from repro.os.fork import fork
from repro.os.kernel import GuestKernel
from repro.units import MB


class KernelMachine(RuleBasedStateMachine):
    allocator_mode = "default"

    @initialize()
    def setup(self):
        config = GuestConfig(memory_bytes=8 * MB).with_allocator(
            self.allocator_mode
        )
        self.kernel = GuestKernel(config, MachineConfig(), random.Random(7))
        self.procs = []
        self.regions = []  # (process, vma)

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #

    @rule()
    def create_process(self):
        if len(self.procs) >= 6:
            return
        self.procs.append(self.kernel.create_process(f"p{len(self.procs)}"))

    @precondition(lambda self: self.procs)
    @rule(npages=st.integers(min_value=1, max_value=600), idx=st.integers(0, 5))
    def mmap(self, npages, idx):
        process = self.procs[idx % len(self.procs)]
        vma = self.kernel.mmap(process, npages)
        self.regions.append((process, vma))

    @precondition(lambda self: self.regions)
    @rule(ridx=st.integers(0, 50), offset=st.integers(0, 1000), write=st.booleans())
    def fault(self, ridx, offset, write):
        process, vma = self.regions[ridx % len(self.regions)]
        if not process.alive:
            return
        vpn = vma.start_vpn + offset % vma.npages
        if process.address_space.find(vpn) is None:
            return  # partially munmapped
        try:
            self.kernel.handle_fault(process, vpn, write)
        except OutOfMemoryError:
            pass

    @precondition(lambda self: self.regions)
    @rule(ridx=st.integers(0, 50), offset=st.integers(0, 1000), count=st.integers(1, 64))
    def munmap(self, ridx, offset, count):
        process, vma = self.regions[ridx % len(self.regions)]
        if not process.alive:
            return
        start = vma.start_vpn + offset % vma.npages
        npages = min(count, vma.end_vpn - start)
        self.kernel.munmap(process, start, npages)

    @precondition(lambda self: self.procs)
    @rule(idx=st.integers(0, 5))
    def do_fork(self, idx):
        if len(self.procs) >= 6:
            return
        parent = self.procs[idx % len(self.procs)]
        if not parent.alive:
            return
        child = fork(self.kernel, parent)
        self.procs.append(child)
        for vma in child.address_space:
            self.regions.append((child, vma))

    @precondition(lambda self: self.procs)
    @rule(idx=st.integers(0, 5))
    def exit_process(self, idx):
        process = self.procs[idx % len(self.procs)]
        if not process.alive:
            return
        # Exiting a parent whose children still share COW frames is fine;
        # refcounts keep shared frames alive.
        self.kernel.exit_process(process)

    @rule()
    def reclaim(self):
        self.kernel.run_reclaim()

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def buddy_self_check(self):
        self.kernel.buddy.check_invariants()

    @invariant()
    def frame_conservation(self):
        memory = self.kernel.memory
        non_free = sum(
            1
            for frame in range(memory.num_frames)
            if not memory.is_free(frame)
        )
        assert non_free + self.kernel.buddy.free_frames == memory.num_frames

    @invariant()
    def mapped_counts_match_tables(self):
        for process in self.kernel.processes.values():
            counted = sum(1 for _ in process.page_table.iter_mappings())
            assert counted == process.page_table.mapped_pages

    @invariant()
    def no_unshared_double_mapping(self):
        owners = {}
        for process in self.kernel.processes.values():
            for _vpn, pte in process.page_table.iter_mappings():
                frame = pte >> 12
                owners.setdefault(frame, []).append(process.pid)
        for frame, pids in owners.items():
            if len(pids) > 1:
                refs = self.kernel._refcount.get(frame, 1)
                assert refs >= len(pids), (
                    f"frame {frame} mapped by {pids} with refcount {refs}"
                )

    @invariant()
    def reservations_consistent(self):
        for process in self.kernel.processes.values():
            if process.part is None:
                continue
            for reservation in process.part.iter_reservations():
                for frame in reservation.unmapped_frames():
                    state = self.kernel.memory.state_of(frame)
                    assert state is FrameState.RESERVED, (
                        f"unmapped reserved frame {frame} in state {state}"
                    )


class TestDefaultKernelStateful(KernelMachine.TestCase):
    settings = settings(max_examples=25, stateful_step_count=40, deadline=None)


class PTEMagnetMachine(KernelMachine):
    allocator_mode = "ptemagnet"


class TestPTEMagnetKernelStateful(PTEMagnetMachine.TestCase):
    settings = settings(max_examples=25, stateful_step_count=40, deadline=None)


class ThpMachine(KernelMachine):
    allocator_mode = "thp"


class TestThpKernelStateful(ThpMachine.TestCase):
    settings = settings(max_examples=20, stateful_step_count=30, deadline=None)


class CaMachine(KernelMachine):
    allocator_mode = "ca"


class TestCaKernelStateful(CaMachine.TestCase):
    settings = settings(max_examples=20, stateful_step_count=30, deadline=None)
