"""Address-math safety: frame/page-number arithmetic stays in integers.

A single ``/`` on a frame or address silently produces a float; every
downstream shift, mask, and dict key then degrades or raises far from the
cause. The simulator's addresses are exact integers by construction, so
true division and ``float()`` applied to address-named values are defects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, LintContext, Rule, name_tokens, register

#: Exact snake_case tokens that mark a value as an address / frame number.
#: Deliberately singular: plural tokens ("frames", "pages") name *counts*,
#: whose ratios are legitimately float (e.g. free_frames / num_frames).
ADDRESS_TOKENS = frozenset(
    {"addr", "vaddr", "paddr", "address", "vpn", "pfn", "gfn", "hfn",
     "vfn", "frame", "base"}
)


def _is_address_value(node: ast.AST) -> bool:
    return bool(name_tokens(node) & ADDRESS_TOKENS)


@register
class AddressDivisionRule(Rule):
    """Flag true division or ``float()`` over address-named values."""

    name = "address-division"
    category = "address-math"
    description = (
        "true division / float() on frame/pfn/addr-named values breaks "
        "integer-exact address arithmetic; use // and int"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if _is_address_value(node.left) or _is_address_value(
                    node.right
                ):
                    yield ctx.finding(
                        node,
                        self,
                        "true division on an address-named value yields a "
                        "float; use // for exact frame arithmetic",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and node.args
                and _is_address_value(node.args[0])
            ):
                yield ctx.finding(
                    node,
                    self,
                    "float() applied to an address-named value; addresses "
                    "and frame numbers must stay exact integers",
                )
