"""Workload abstraction and the memory-operation event model.

A workload is a deterministic (seeded) generator of :class:`MemoryOp`
events that the simulation engine executes against a guest process:

* :class:`MmapOp` -- eagerly allocate a contiguous virtual region.
* :class:`AccessOp` -- touch one page of a region (faults in lazily).
* :class:`FreeOp` -- munmap a region (or part of it).
* :class:`PhaseOp` -- marker separating workload phases; experiment
  harnesses use these to start/stop co-runners and measurement windows,
  mirroring the paper's methodology (e.g. §3.3 stops stress-ng when
  pagerank finishes initialising).
"""

from __future__ import annotations

import abc
import enum
import random
import zlib
from typing import Iterator, NamedTuple, Union


class WorkloadPhase(enum.Enum):
    """Canonical phase markers emitted by the bundled workloads."""

    #: Virtual allocation done; physical population (faults) begins.
    INIT = "init"
    #: All data structures populated; the compute loop begins. The paper's
    #: measurement windows start here.
    COMPUTE = "compute"
    #: Compute finished.
    DONE = "done"


# Ops are NamedTuples rather than frozen dataclasses: workloads construct
# one object per simulated memory operation, and tuple construction is a
# single C-level call where a frozen dataclass pays one object.__setattr__
# per field. The public shape (field names, defaults, immutability,
# equality) is unchanged.


class MmapOp(NamedTuple):
    """Allocate ``npages`` of contiguous virtual memory as region ``region``."""

    region: str
    npages: int


class AccessOp(NamedTuple):
    """Access one page of a region.

    Attributes
    ----------
    region:
        Region tag from a previous :class:`MmapOp`.
    page:
        Page index within the region.
    block:
        Cache-block index within the page (0..63); lets workloads express
        intra-page locality.
    write:
        Whether the access is a store (relevant for COW).
    """

    region: str
    page: int
    block: int = 0
    write: bool = False


class BrkOp(NamedTuple):
    """Grow the heap by ``grow_pages`` pages; the new range becomes
    region ``region`` (heap growth is eager-virtual, like mmap)."""

    region: str
    grow_pages: int


class FreeOp(NamedTuple):
    """Unmap ``npages`` of a region starting at ``start_page``.

    ``npages == 0`` means the whole region.
    """

    region: str
    start_page: int = 0
    npages: int = 0


class PhaseOp(NamedTuple):
    """Phase boundary marker."""

    phase: WorkloadPhase


MemoryOp = Union[MmapOp, BrkOp, AccessOp, FreeOp, PhaseOp]


class Workload(abc.ABC):
    """Base class for all workload models.

    Subclasses define :meth:`ops`, a generator of :class:`MemoryOp` events.
    Determinism contract: two workloads constructed with the same
    parameters and the same seed produce identical event streams, so the
    default-kernel and PTEMagnet runs of an experiment see the same memory
    behaviour (the paper's paired-run methodology).
    """

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self.seed = seed

    def rng(self) -> random.Random:
        """A fresh deterministic RNG for one generation of the stream.

        Seeded from a stable hash of the workload name (crc32, not
        ``hash()``, which is randomized per process) so streams reproduce
        across runs and machines.
        """
        return random.Random(zlib.crc32(self.name.encode()) ^ self.seed)

    @abc.abstractmethod
    def ops(self) -> Iterator[MemoryOp]:
        """Yield the workload's memory-operation stream."""

    @property
    @abc.abstractmethod
    def footprint_pages(self) -> int:
        """Approximate resident footprint in pages once initialised."""

    @property
    def description(self) -> str:
        """One-line description for the Table 3 analog."""
        return self.__class__.__doc__.strip().splitlines()[0] if self.__class__.__doc__ else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r}, seed={self.seed})"
