"""Unit tests for the metrics registry, snapshots, and snapshot files."""

import json

import pytest

from repro.errors import ReproError
from repro.metrics.registry import (
    METRIC_NAME_RE,
    REGISTRY,
    MetricKind,
    MetricsRegistry,
    MetricsSnapshot,
    load_snapshot,
    write_snapshots,
)
from repro.obs.histogram import Log2Histogram
from repro.obs.profile import Profiler


def make_registry():
    reg = MetricsRegistry()
    reg.counter("perf.walk_cycles", help="cycles in page walks", unit="cycles")
    reg.gauge("mem.free_fraction", help="free / total")
    reg.histogram("perf.fault_latencies", help="per-fault latency")
    return reg


class TestRegistry:
    def test_register_and_catalog_sorted(self):
        reg = make_registry()
        assert len(reg) == 3
        assert "perf.walk_cycles" in reg
        assert [spec.name for spec in reg.catalog()] == sorted(
            spec.name for spec in reg.catalog()
        )

    def test_registration_is_idempotent(self):
        reg = make_registry()
        spec = reg.counter("perf.walk_cycles")
        assert spec is reg.get("perf.walk_cycles")
        assert len(reg) == 3

    def test_kind_conflict_rejected(self):
        reg = make_registry()
        with pytest.raises(ReproError, match="already registered"):
            reg.gauge("perf.walk_cycles")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("WalkCycles", "walkcycles", "perf.", "perf.Walk", "9x.y"):
            with pytest.raises(ReproError, match="invalid metric name"):
                reg.counter(bad)
            assert not METRIC_NAME_RE.match(bad)

    def test_canonical_schema_registers_on_import(self):
        import repro.metrics.collect  # noqa: F401

        assert "perf.walk_cycles" in REGISTRY
        assert "kernel.faults" in REGISTRY
        assert "mem.free_pages" in REGISTRY


class TestSnapshot:
    def test_set_validates_registration_and_kind(self):
        snap = MetricsSnapshot("t", registry=make_registry())
        snap.set("perf.walk_cycles", 123)
        with pytest.raises(ReproError, match="not registered"):
            snap.set("perf.unknown_counter", 1)
        with pytest.raises(ReproError, match="is a histogram"):
            snap.set("perf.fault_latencies", 5)
        with pytest.raises(ReproError, match="numeric value"):
            snap.set("mem.free_fraction", "0.5")

    def test_scalar_items_flatten_histograms(self):
        snap = MetricsSnapshot("t", registry=make_registry())
        hist = Log2Histogram()
        for value in (8, 8, 64):
            hist.record(value)
        snap.set("perf.fault_latencies", hist)
        snap.set("perf.walk_cycles", 10)
        items = dict(snap.scalar_items())
        assert items["perf.walk_cycles"] == 10.0
        assert items["perf.fault_latencies.count"] == 3.0
        assert items["perf.fault_latencies.mean"] == hist.mean
        assert items["perf.fault_latencies.p99"] == hist.percentile(0.99)

    def test_dict_round_trip_is_self_describing(self):
        snap = MetricsSnapshot("colocated", registry=make_registry())
        snap.set("perf.walk_cycles", 4242)
        snap.set("mem.free_fraction", 0.25)
        hist = Log2Histogram()
        hist.record(100)
        snap.set("perf.fault_latencies", hist)
        prof = Profiler()
        prof.add(("walk", "hpt", "hl1"), 9)
        snap.profile = prof.root

        clone = MetricsSnapshot.from_dict(snap.to_dict())
        # the clone's registry is rebuilt purely from the JSON
        assert clone.registry is not snap.registry
        assert clone.registry.get("perf.walk_cycles").kind is MetricKind.COUNTER
        assert clone.label == "colocated"
        assert dict(clone.scalar_items()) == dict(snap.scalar_items())
        assert clone.profile.to_dict() == prof.root.to_dict()

    def test_prometheus_export(self):
        snap = MetricsSnapshot("t", registry=make_registry())
        snap.set("perf.walk_cycles", 77)
        hist = Log2Histogram()
        for value in (3, 3, 100):
            hist.record(value)
        snap.set("perf.fault_latencies", hist)
        text = snap.to_prometheus()
        assert "# TYPE repro_perf_walk_cycles counter" in text
        assert "repro_perf_walk_cycles 77" in text
        assert "# HELP repro_perf_fault_latencies per-fault latency" in text
        # cumulative buckets: two samples of 3 (bucket high 3), then 100
        assert 'repro_perf_fault_latencies_bucket{le="3"} 2' in text
        assert 'repro_perf_fault_latencies_bucket{le="127"} 3' in text
        assert 'repro_perf_fault_latencies_bucket{le="+Inf"} 3' in text
        assert "repro_perf_fault_latencies_sum 106" in text
        assert "repro_perf_fault_latencies_count 3" in text


class TestSnapshotFiles:
    def _snap(self, label, cycles):
        snap = MetricsSnapshot(label, registry=make_registry())
        snap.set("perf.walk_cycles", cycles)
        return snap

    def test_single_snapshot_round_trip(self, tmp_path):
        path = tmp_path / "run.json"
        write_snapshots(path, {"standalone": self._snap("standalone", 5)})
        loaded = load_snapshot(path)
        assert loaded.label == "standalone"
        assert loaded.get("perf.walk_cycles") == 5
        payload = json.loads(path.read_text())
        assert payload["kind"] == "repro.metrics.snapshot"

    def test_family_requires_label_fragment(self, tmp_path):
        path = tmp_path / "table1.json"
        write_snapshots(
            path,
            {
                "standalone": self._snap("standalone", 5),
                "colocated": self._snap("colocated", 9),
            },
        )
        payload = json.loads(path.read_text())
        assert payload["kind"] == "repro.metrics.snapshots"
        assert load_snapshot(f"{path}#colocated").get("perf.walk_cycles") == 9
        with pytest.raises(ReproError, match="pick one"):
            load_snapshot(path)
        with pytest.raises(ReproError, match="no snapshot labelled"):
            load_snapshot(f"{path}#nope")

    def test_write_rejects_empty(self, tmp_path):
        with pytest.raises(ReproError, match="no snapshots"):
            write_snapshots(tmp_path / "x.json", {})

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ReproError, match="not a metrics snapshot"):
            load_snapshot(path)


class TestMetricsCatalogCli:
    """``python -m repro.obs metrics``: the catalog is deterministic."""

    def _catalog_lines(self, capsys):
        from repro.obs.cli import main as obs_main

        assert obs_main(["metrics"]) == 0
        out = capsys.readouterr().out
        return [line for line in out.splitlines() if line]

    def test_catalog_is_sorted_and_pinned(self, capsys):
        lines = self._catalog_lines(capsys)
        names = [line.split()[0] for line in lines if "." in line.split()[0]]
        assert names == sorted(names)
        # pin the canonical schema: these names are the stable interface
        # snapshots and CI baselines depend on
        for expected in (
            "perf.cycles",
            "perf.walk_cycles",
            "perf.host_walk_cycles",
            "perf.hpt_memory_accesses",
            "perf.fault_latencies",
            "kernel.faults",
            "mem.free_pages",
            "cache.hpt.served_memory",
            "perf.host_pt_fragmentation",
            "run.faults_total",
        ):
            assert expected in names, expected
        assert lines[-1].endswith("metrics registered")

    def test_catalog_is_stable_across_invocations(self, capsys):
        first = self._catalog_lines(capsys)
        second = self._catalog_lines(capsys)
        assert first == second
