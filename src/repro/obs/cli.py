"""The ``python -m repro.obs`` command line: inspect and convert traces.

::

    python -m repro.obs summarize out.trace.jsonl
    python -m repro.obs export out.trace.jsonl -o out.trace.json
    python -m repro.obs catalog

``export`` writes a Chrome ``trace_event`` JSON loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``. ``catalog`` imports
the instrumented layers and lists every registered tracepoint.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .export import render_summary, summarize, to_chrome
from .sinks import iter_trace
from .trace import TRACER

#: Modules imported by ``catalog`` so their emit sites register.
INSTRUMENTED_MODULES = (
    "repro.cache.hierarchy",
    "repro.cache.pwc",
    "repro.core.allocator",
    "repro.core.part",
    "repro.core.reclaimer",
    "repro.mem.buddy",
    "repro.mem.pcp",
    "repro.os.kernel",
    "repro.sim.engine",
    "repro.tlb.tlb",
    "repro.virt.nested",
)


def _cmd_summarize(args: argparse.Namespace) -> int:
    summary = summarize(iter_trace(args.trace))
    if args.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_summary(summary))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    document = to_chrome(iter_trace(args.trace))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=args.indent)
        handle.write("\n")
    print(
        f"wrote {args.output} ({len(document['traceEvents'])} trace events); "
        "load it in https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    import importlib

    for module in INSTRUMENTED_MODULES:
        importlib.import_module(module)
    catalog = TRACER.catalog()
    width = max((len(name) for name in catalog), default=0)
    for name, enabled in catalog.items():
        state = "on" if enabled else "off"
        print(f"{name.ljust(width)}  [{state}]")
    print(f"{len(catalog)} tracepoints registered")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize and convert repro trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="digest a JSONL trace")
    p_sum.add_argument("trace", help="JSONL trace file (runner --trace output)")
    p_sum.add_argument(
        "--json", action="store_true", help="emit the digest as JSON"
    )
    p_sum.set_defaults(func=_cmd_summarize)

    p_exp = sub.add_parser(
        "export", help="convert a JSONL trace to Chrome/Perfetto JSON"
    )
    p_exp.add_argument("trace", help="JSONL trace file (runner --trace output)")
    p_exp.add_argument(
        "-o", "--output", required=True, help="Chrome trace JSON output path"
    )
    p_exp.add_argument(
        "--indent", type=int, default=None, help="pretty-print indentation"
    )
    p_exp.set_defaults(func=_cmd_export)

    p_cat = sub.add_parser("catalog", help="list registered tracepoints")
    p_cat.set_defaults(func=_cmd_catalog)

    args = parser.parse_args(argv)
    return args.func(args)
