"""Set-associative cache with true-LRU replacement.

Operates at cache-block granularity: callers pass *block numbers*
(byte address >> 6), not byte addresses. Each set is an insertion-ordered
dict used as an LRU list -- the first key is the least recently used way.

Two hot-path affordances keep the model cheap without changing its
behaviour: :meth:`SetAssociativeCache.access_fill` folds the lookup and
the fill-on-miss into a single set probe (the hierarchy previously
indexed the same set twice per missing level), and occupancy is tracked
incrementally so the periodic sampler's :meth:`occupancy` probe is O(1)
instead of O(num_sets).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..config import CacheConfig
from ..units import CACHE_BLOCK_SIZE


class SetAssociativeCache:
    """One cache level.

    Parameters
    ----------
    config:
        Geometry and latency of this level.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        num_blocks = config.size_bytes // CACHE_BLOCK_SIZE
        if num_blocks % config.associativity:
            raise ValueError(
                f"{config.name}: blocks ({num_blocks}) not divisible by "
                f"associativity ({config.associativity})"
            )
        self.num_sets = num_blocks // config.associativity
        self._sets: List[Dict[int, None]] = [{} for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Resident-block count, maintained at every insert/remove so
        #: :meth:`occupancy` never walks the sets.
        self._occupancy = 0
        #: Flat membership mirror: exactly the union of all set keys,
        #: maintained at every fill/evict/invalidate/flush. Lets the
        #: batched engine test a whole address segment for residency
        #: with one C-level ``issuperset`` instead of per-op set
        #: probes. A block's set index is a pure function of the block,
        #: so flat membership is equivalent to per-set membership.
        self.members: Set[int] = set()

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def latency(self) -> int:
        return self.config.latency_cycles

    def _set_for(self, block: int) -> Dict[int, None]:
        return self._sets[block % self.num_sets]

    def access(self, block: int) -> bool:
        """Look up ``block``; returns hit/miss and updates LRU on hit.

        Does *not* allocate on miss -- the hierarchy decides fill policy via
        :meth:`fill`.
        """
        ways = self._sets[block % self.num_sets]
        if block in ways:
            del ways[block]
            ways[block] = None  # move to MRU position
            self.hits += 1
            return True
        self.misses += 1
        return False

    def access_fill(self, block: int) -> bool:
        """:meth:`access` plus fill-on-miss, with a single set lookup.

        The end state and every counter match ``access(block)`` followed
        (on a miss) by ``fill(block)`` -- the inclusive hierarchy fills
        every level that missed, so folding the two traversals saves one
        set index + probe per missing level on the hot path.
        """
        ways = self._sets[block % self.num_sets]
        if block in ways:
            del ways[block]
            ways[block] = None  # move to MRU position
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.config.associativity:
            victim = next(iter(ways))
            del ways[victim]
            self.members.remove(victim)
            self.evictions += 1
        else:
            self._occupancy += 1
        ways[block] = None
        self.members.add(block)
        return False

    def fill(self, block: int) -> Optional[int]:
        """Insert ``block``, evicting LRU if the set is full.

        Returns the evicted block number, or ``None`` if nothing was
        evicted.
        """
        ways = self._sets[block % self.num_sets]
        victim = None
        if block in ways:
            del ways[block]
        elif len(ways) >= self.config.associativity:
            victim = next(iter(ways))
            del ways[victim]
            self.members.remove(victim)
            self.evictions += 1
        else:
            self._occupancy += 1
        ways[block] = None
        self.members.add(block)
        return victim

    def contains(self, block: int) -> bool:
        """Non-destructive presence probe (no LRU update, no counters)."""
        return block in self._set_for(block)

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if present; returns whether it was present."""
        ways = self._set_for(block)
        if block in ways:
            del ways[block]
            self.members.remove(block)
            self._occupancy -= 1
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (counters preserved)."""
        for ways in self._sets:
            ways.clear()
        self.members.clear()
        self._occupancy = 0

    def occupancy(self) -> int:
        """Number of resident blocks (O(1): incrementally maintained)."""
        return self._occupancy

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
