"""Tests for 5-level page tables (the la57 extension §2.5 anticipates)."""

import pytest

from repro.config import GuestConfig, HostConfig, PlatformConfig
from repro.errors import PageTableError
from repro.pagetable.radix import PageTable
from repro.units import MB


class FrameSource:
    def __init__(self):
        self.next = 100

    def alloc(self):
        frame = self.next
        self.next += 1
        return frame


class TestFiveLevelTable:
    def test_depth_validation(self):
        with pytest.raises(PageTableError):
            PageTable(FrameSource().alloc, levels=1)
        with pytest.raises(PageTableError):
            PageTable(FrameSource().alloc, levels=7)

    def test_map_translate_roundtrip(self):
        table = PageTable(FrameSource().alloc, levels=5)
        vpns = [0, 7, 1 << 36, (1 << 40) + 5]
        for i, vpn in enumerate(vpns):
            table.map(vpn, 1000 + i)
        for i, vpn in enumerate(vpns):
            assert table.translate(vpn) == 1000 + i

    def test_walk_path_has_five_levels(self):
        table = PageTable(FrameSource().alloc, levels=5)
        table.map(0x12345, 9)
        path = table.walk_path(0x12345)
        assert len(path) == 5
        assert [level for level, _f, _i in path] == [5, 4, 3, 2, 1]

    def test_node_count_scales_with_depth(self):
        four = PageTable(FrameSource().alloc, levels=4)
        five = PageTable(FrameSource().alloc, levels=5)
        four.map(0, 1)
        five.map(0, 1)
        assert five.node_count == four.node_count + 1

    def test_vpn_beyond_48_bits(self):
        # 5-level tables cover 57-bit VAs; vpns above the 4-level range
        # must work.
        table = PageTable(FrameSource().alloc, levels=5)
        huge_vpn = 1 << 42
        table.map(huge_vpn, 77)
        assert table.translate(huge_vpn) == 77

    def test_unmap_prunes_five_levels(self):
        table = PageTable(FrameSource().alloc, levels=5)
        table.map(123, 4)
        table.unmap(123)
        assert table.node_count == 1


class TestFiveLevelWalks:
    def make_walker(self, levels):
        from repro.pagetable.walker import PageWalker

        table = PageTable(FrameSource().alloc, levels=levels)
        accesses = []

        def memory(addr, stream):
            accesses.append(addr)
            return 10

        return table, PageWalker(table, memory), accesses

    def test_five_level_walk_issues_five_accesses(self):
        table, walker, accesses = self.make_walker(5)
        table.map(0x555, 3)
        result = walker.walk(0x555)
        assert result.accesses == 5
        assert result.frame == 3

    def test_deeper_tables_cost_more(self):
        table4, walker4, _ = self.make_walker(4)
        table5, walker5, _ = self.make_walker(5)
        table4.map(9, 1)
        table5.map(9, 1)
        assert walker5.walk(9).cycles > walker4.walk(9).cycles


class TestFiveLevelNestedStack:
    def test_end_to_end_simulation_with_la57(self):
        from repro import Simulation
        from tests.test_engine import TinyWorkload

        platform = PlatformConfig(
            host=HostConfig(memory_bytes=64 * MB, pt_levels=5),
            guest=GuestConfig(memory_bytes=32 * MB, pt_levels=5),
        )
        sim = Simulation(platform)
        run = sim.add_workload(TinyWorkload(npages=16, repeat=2))
        run.start_measurement()  # measure from the first fault
        sim.run_until_finished(run)
        counters = sim.result_for(run).counters
        assert counters.accesses == 48  # init touches + 2 compute sweeps
        assert counters.walk_cycles > 0

    def test_la57_walks_cost_more_than_la48(self):
        from repro import Simulation
        from tests.test_engine import TinyWorkload

        def walk_cycles(levels):
            platform = PlatformConfig(
                host=HostConfig(memory_bytes=64 * MB, pt_levels=levels),
                guest=GuestConfig(memory_bytes=32 * MB, pt_levels=levels),
            )
            sim = Simulation(platform)
            # Disable PWCs so depth differences are fully visible.
            run = sim.add_workload(TinyWorkload(npages=64, repeat=1))
            run.core.guest_pwc.entries_per_level = 0
            run.core.host_pwc.entries_per_level = 0
            run.start_measurement()  # include the faulting init sweep
            sim.run_until_finished(run)
            return sim.result_for(run).counters.walk_cycles

        assert walk_cycles(5) > walk_cycles(4)
