"""Tests for the engine translation fast path (repro.sim.fastpath).

Two layers of defence:

* unit tests pin the mirror invariant -- the :class:`TranslationCache`
  holds ``vpn`` if and only if ``vpn`` is resident in the L1 TLB, with
  the same frame and the *identical* set dict (the fast path replays the
  LRU refresh through it);
* an end-to-end test runs the same colocated scenario with the fast
  path on and off (``REPRO_NO_FASTPATH=1``) and requires byte-identical
  metrics snapshots. The perf-smoke bench in ``benchmarks/test_speedup.py``
  repeats this gate on the figure6-shaped regime while also asserting
  the speedup itself.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GuestConfig, HostConfig, PlatformConfig, TlbConfig
from repro.metrics.collect import snapshot_simulation
from repro.sim.fastpath import NO_FASTPATH_ENV, TranslationCache
from repro.tlb.tlb import TlbHierarchy
from repro.units import MB
from repro.workloads import StressNg
from repro.workloads.spec import LowPressureSpec


def small_hierarchy():
    """4-entry/2-way L1 over an 8-entry L2: evicts after a handful."""
    return TlbHierarchy(
        TlbConfig("L1D", 4, 2),
        TlbConfig("L2", 8, 4),
        xlate=TranslationCache(),
    )


def assert_mirror_invariant(tlb: TlbHierarchy) -> None:
    """The mirror == L1 content, frame-for-frame, same set dicts."""
    resident = {}
    for ways in tlb.l1._sets:
        resident.update(ways)
    assert set(tlb.xlate) == set(resident)
    for vpn, (hfn, ways, writable) in tlb.xlate.items():
        assert hfn == resident[vpn]
        assert ways is tlb.l1._sets[vpn % tlb.l1.num_sets]
        assert writable is True


class TestTranslationCacheMirror:
    def test_insert_mirrors_into_l1_set(self):
        tlb = small_hierarchy()
        tlb.insert(7, 42)
        hfn, ways, writable = tlb.xlate[7]
        assert hfn == 42 and writable
        assert ways is tlb.l1._sets[7 % tlb.l1.num_sets]
        assert_mirror_invariant(tlb)

    def test_l1_eviction_invalidates_victim(self):
        tlb = small_hierarchy()
        sets = tlb.l1.num_sets
        a, b, c = 0, sets, 2 * sets  # all in L1 set 0 (2-way)
        tlb.insert(a, 1)
        tlb.insert(b, 2)
        tlb.insert(c, 3)  # evicts a from L1
        assert a not in tlb.xlate
        assert set(tlb.xlate) >= {b, c}
        assert_mirror_invariant(tlb)

    def test_l2_promotion_reinstalls_mirror(self):
        tlb = small_hierarchy()
        sets = tlb.l1.num_sets
        a, b, c = 0, sets, 2 * sets
        tlb.insert(a, 1)
        tlb.insert(b, 2)
        tlb.insert(c, 3)  # a now lives only in L2
        assert a not in tlb.xlate
        assert tlb.lookup(a) == 1  # L2 hit promotes back into L1
        assert tlb.xlate[a][0] == 1
        assert_mirror_invariant(tlb)

    def test_invalidate_and_flush_reach_mirror(self):
        tlb = small_hierarchy()
        tlb.insert(5, 50)
        tlb.insert(6, 60)
        tlb.invalidate(5)  # shootdown: PTE mutation / COW / reclaim path
        assert 5 not in tlb.xlate
        assert_mirror_invariant(tlb)
        tlb.flush()
        assert not tlb.xlate
        assert_mirror_invariant(tlb)

    def test_no_mirror_when_disabled(self):
        tlb = TlbHierarchy(TlbConfig("L1D", 4, 2), TlbConfig("L2", 8, 4))
        tlb.insert(7, 42)
        tlb.invalidate(7)
        tlb.flush()
        assert tlb.xlate is None

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "lookup", "invalidate", "flush"]),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mirror_invariant_under_churn(self, ops):
        tlb = small_hierarchy()
        frame = 100
        for op, vpn in ops:
            if op == "insert":
                frame += 1
                tlb.insert(vpn, frame)
            elif op == "lookup":
                tlb.lookup(vpn)
            elif op == "invalidate":
                tlb.invalidate(vpn)
            else:
                tlb.flush()
            assert_mirror_invariant(tlb)


def _run_scenario():
    """A small colocated run covering walks, evictions and churn."""
    from repro.sim.engine import Simulation

    sim = Simulation(
        PlatformConfig(
            host=HostConfig(memory_bytes=64 * MB),
            guest=GuestConfig(memory_bytes=32 * MB),
        )
    )
    churn = sim.add_workload(StressNg(seed=1))
    # Footprint larger than the 32-entry L1 DTLB: exercises evictions,
    # L2 promotions and full walks alongside fast-path hits.
    bench = sim.add_workload(
        LowPressureSpec("leela", 0, accesses=4000, footprint=64)
    )
    bench.start_measurement()
    sim.run_until_finished(bench)
    sim.stop(churn)
    result = sim.result_for(bench)
    return snapshot_simulation("bench", sim, result).to_dict()


class TestEndToEndIdentity:
    def test_fastpath_snapshot_identical_to_reference(self, monkeypatch):
        monkeypatch.delenv(NO_FASTPATH_ENV, raising=False)
        fast = _run_scenario()
        monkeypatch.setenv(NO_FASTPATH_ENV, "1")
        reference = _run_scenario()
        assert json.dumps(fast, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
