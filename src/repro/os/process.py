"""Guest process model.

A process owns a virtual address space, a guest page table, and -- when
the kernel runs PTEMagnet and the cgroup policy enables it -- a Page
Reservation Table (PaRT). Fork relationships are kept so the PTEMagnet
fork rules of §4.4 (children may consume, but not create, reservations in
the parent's map) can be enforced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..pagetable.radix import PageTable
from .vma import AddressSpace

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from ..core.part import PageReservationTable


class Process:
    """One guest process.

    Parameters
    ----------
    pid:
        Process id (unique within the guest kernel).
    name:
        Human-readable label (workload name).
    page_table:
        The process' guest page table.
    memory_limit_bytes:
        The cgroup ``memory.limit_in_bytes`` declared for this process;
        the PTEMagnet enablement policy (§4.4) compares it to a threshold.
        ``0`` means unlimited.
    """

    def __init__(
        self,
        pid: int,
        name: str,
        page_table: PageTable,
        memory_limit_bytes: int = 0,
    ) -> None:
        self.pid = pid
        self.name = name
        self.address_space = AddressSpace()
        self.page_table = page_table
        self.memory_limit_bytes = memory_limit_bytes
        #: PaRT; ``None`` when PTEMagnet is off or gated out for this process.
        self.part: Optional["PageReservationTable"] = None
        self.parent: Optional["Process"] = None
        self.children: List["Process"] = []
        self.alive = True
        #: Pages faulted in over the process lifetime.
        self.faults = 0
        #: Faults served from an existing reservation (PTEMagnet fast path).
        self.reservation_hits = 0

    @property
    def rss_pages(self) -> int:
        """Resident set size: pages currently mapped in the guest PT."""
        return self.page_table.mapped_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, name={self.name!r}, rss={self.rss_pages})"
