"""Fast-path invalidation contract: PTE mutations must shoot down.

The engine's translation fast path (:mod:`repro.sim.fastpath`) keeps a
per-core mirror of the L1 TLB. The mirror stays correct only because
every translation-*changing* guest page-table mutation reaches a TLB
shootdown: kernel code calls ``_notify_unmap(pid, vpn)`` (fanned out to
each core's ``TlbHierarchy.invalidate``, which maintains the mirror)
alongside every ``page_table.unmap`` / ``unmap_huge`` / ``update`` call
-- the COW break, swap/reclaim, huge-split and free paths all follow
this pairing (see docs/internals.md, "Performance").

This rule pins the pairing statically: a function that mutates an
existing guest translation with no invalidation hook in sight is a
fast-path correctness bug even while no test happens to trip over the
stale entry. ``map``/``map_huge`` install translations where none
existed -- no TLB entry can be stale -- so they need no shootdown and
are not checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, LintContext, Rule, register

#: Page-table methods that change or remove an existing translation.
MUTATORS = frozenset({"unmap", "unmap_huge", "update"})

#: Calls that count as reaching the shootdown/invalidation machinery.
INVALIDATION_HOOKS = frozenset(
    {"_notify_unmap", "notify_unmap", "invalidate", "flush"}
)

#: Receiver names identifying a *guest* page table. Host-PT mutations
#: (``host_pt.unmap`` in the hypervisor's unback path) are out of scope:
#: the model never unbacks frames inside a measured window.
GUEST_PT_RECEIVERS = frozenset({"page_table"})


def _is_guest_pt_mutation(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in MUTATORS):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in GUEST_PT_RECEIVERS
    if isinstance(receiver, ast.Name):
        return receiver.id in GUEST_PT_RECEIVERS
    return False


def _calls_invalidation_hook(func_node: ast.AST) -> bool:
    for node in ast.walk(func_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name in INVALIDATION_HOOKS:
            return True
    return False


@register
class FastpathInvalidationRule(Rule):
    """Flag guest-PT mutations with no TLB invalidation in the function."""

    name = "fastpath-invalidation"
    category = "correctness"
    description = (
        "a function mutating an existing guest page-table translation "
        "(page_table.unmap/unmap_huge/update) must also reach a TLB "
        "shootdown (_notify_unmap/invalidate/flush), or the engine "
        "fast path can serve a stale translation"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_test_code:
            return
        for func_node in ast.walk(ctx.tree):
            if not isinstance(
                func_node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            mutations = [
                node
                for body_item in func_node.body
                for node in ast.walk(body_item)
                if isinstance(node, ast.Call) and _is_guest_pt_mutation(node)
            ]
            if not mutations or _calls_invalidation_hook(func_node):
                continue
            for node in mutations:
                yield ctx.finding(
                    node,
                    self,
                    f"{node.func.attr}() mutates an existing guest "
                    "translation but this function never reaches a TLB "
                    "shootdown (_notify_unmap/invalidate/flush); the "
                    "fast-path mirror would go stale",
                )
