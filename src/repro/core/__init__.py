"""PTEMagnet: the paper's primary contribution (§4).

A reservation-based guest-OS physical allocator. On the first page fault
into an aligned 8-page (32KB) virtual group, it takes a contiguous 8-frame
chunk from the buddy allocator, maps only the faulting page, and records
the chunk in the per-process Page Reservation Table (PaRT). Later faults
in the group are served straight from the reservation, which guarantees
that the group's eight host PTEs share one cache block -- restoring the
leaf-level PT locality that colocation destroys.

Components:

* :mod:`repro.core.reservation` -- one reservation (base frame + 8-bit mask).
* :mod:`repro.core.part` -- the PaRT: a per-process 4-level radix tree with
  per-node locks.
* :mod:`repro.core.allocator` -- the fault-path allocator.
* :mod:`repro.core.reclaimer` -- the memory-pressure reclamation daemon.
* :mod:`repro.core.policy` -- the cgroup-based enablement gate.
"""

from .allocator import FaultPathResult, PTEMagnetAllocator
from .part import PageReservationTable, PartNode
from .policy import EnablementPolicy
from .reclaimer import ReclaimReport, ReservationReclaimer
from .reservation import Reservation

__all__ = [
    "EnablementPolicy",
    "FaultPathResult",
    "PTEMagnetAllocator",
    "PageReservationTable",
    "PartNode",
    "ReclaimReport",
    "Reservation",
    "ReservationReclaimer",
]
