"""Per-CPU page caches (Linux "pcp lists").

Linux front-ends the buddy allocator with small per-CPU free-page caches:
order-0 allocations pop from the local CPU's list (refilled in batches
from the buddy core), frees push to it (drained in batches when it grows
past a watermark). The paper's fragmentation story (§2.4) plays out
*through* this layer on real systems: after churn, a refill batch is
assembled from the scrambled global free lists, so the locality a batch
provides decays as the system ages.

Modelled here as an optional layer (``GuestConfig.pcp_enabled``) so the
pcp-vs-fragmentation interaction can be studied as an ablation; the
calibrated default platform keeps it off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import OutOfMemoryError
from ..obs.profile import PROFILER
from ..obs.trace import tracepoint
from .buddy import BuddyAllocator
from .physical import FrameState

_tp_refill = tracepoint("pcp.refill")
_tp_drain = tracepoint("pcp.drain")


@dataclass
class PcpStats:
    """Per-CPU cache activity counters."""

    hits: int = 0
    refills: int = 0
    drains: int = 0
    frees_cached: int = 0


class PerCpuPageCache:
    """Per-CPU order-0 page caches over one buddy allocator.

    Parameters
    ----------
    buddy:
        The backing allocator.
    cpus:
        Number of per-CPU lists.
    batch:
        Pages moved per refill/drain (Linux's ``pcp->batch``).
    high:
        Watermark above which a CPU's list drains (Linux's ``pcp->high``).
    """

    def __init__(
        self,
        buddy: BuddyAllocator,
        cpus: int,
        batch: int = 16,
        high: int = 48,
    ) -> None:
        if cpus <= 0 or batch <= 0 or high < batch:
            raise ValueError("need cpus > 0, batch > 0, high >= batch")
        self.buddy = buddy
        self.cpus = cpus
        self.batch = batch
        self.high = high
        self._lists: Dict[int, List[int]] = {cpu: [] for cpu in range(cpus)}
        self.stats = PcpStats()

    def _check_cpu(self, cpu: int) -> int:
        return cpu % self.cpus

    def cached_frames(self, cpu: Optional[int] = None) -> int:
        """Frames currently held in pcp lists (one CPU or all)."""
        if cpu is not None:
            return len(self._lists[self._check_cpu(cpu)])
        return sum(len(entries) for entries in self._lists.values())

    def alloc_frame(
        self,
        cpu: int,
        owner: Optional[int] = None,
        state: FrameState = FrameState.USER,
    ) -> int:
        """Allocate one frame from ``cpu``'s cache (LIFO), refilling on
        demand from the buddy core."""
        cpu = self._check_cpu(cpu)
        entries = self._lists[cpu]
        if not entries:
            self._refill(cpu)
            entries = self._lists[cpu]
        else:
            self.stats.hits += 1
            if PROFILER.enabled:
                PROFILER.add(("alloc", "pcp", "hit"), 0)
        frame = entries.pop()
        san = self.buddy.sanitizer
        if san is not None:
            san.on_pcp_take(frame, cpu)
        self.buddy.memory.set_state(frame, state, owner)
        return frame

    def _refill(self, cpu: int) -> None:
        """Pull up to ``batch`` order-0 pages from the buddy core."""
        entries = self._lists[cpu]
        for _ in range(self.batch):
            try:
                frame = self.buddy.alloc_frame(
                    owner=None, state=FrameState.KERNEL
                )
            except OutOfMemoryError:
                break
            entries.append(frame)
            san = self.buddy.sanitizer
            if san is not None:
                san.on_pcp_fill(frame, cpu)
        if not entries:
            raise OutOfMemoryError(
                f"{self.buddy.memory.name}: pcp refill found no free pages"
            )
        self.stats.refills += 1
        if PROFILER.enabled:
            PROFILER.add(("alloc", "pcp", "refill"), 0, count=len(entries))
        if _tp_refill.enabled:
            _tp_refill.emit(cpu=cpu, pages=len(entries))

    def free_frame(self, cpu: int, frame: int) -> None:
        """Return one frame to ``cpu``'s cache, draining past the
        watermark."""
        cpu = self._check_cpu(cpu)
        self.buddy.memory.set_state(frame, FrameState.KERNEL, None)
        entries = self._lists[cpu]
        entries.append(frame)
        san = self.buddy.sanitizer
        if san is not None:
            san.on_pcp_fill(frame, cpu)
        self.stats.frees_cached += 1
        if len(entries) > self.high:
            self._drain(cpu)

    def _drain(self, cpu: int) -> None:
        """Push ``batch`` pages from ``cpu``'s cache back to the buddy."""
        entries = self._lists[cpu]
        drained = min(self.batch, len(entries))
        san = self.buddy.sanitizer
        for _ in range(drained):
            frame = entries.pop(0)
            if san is not None:
                san.on_pcp_take(frame, cpu)
            self.buddy.free(frame)
        self.stats.drains += 1
        if PROFILER.enabled:
            PROFILER.add(("alloc", "pcp", "drain"), 0, count=drained)
        if _tp_drain.enabled:
            _tp_drain.emit(cpu=cpu, pages=drained)

    def drain_all(self) -> None:
        """Return every cached page to the buddy (offline/teardown)."""
        san = self.buddy.sanitizer
        for cpu, entries in self._lists.items():
            while entries:
                frame = entries.pop()
                if san is not None:
                    san.on_pcp_take(frame, cpu)
                self.buddy.free(frame)

    @property
    def free_frames_total(self) -> int:
        """Free frames counting both the buddy core and pcp caches."""
        return self.buddy.free_frames + self.cached_frames()
