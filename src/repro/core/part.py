"""The Page Reservation Table (PaRT).

Per §4.2: a per-process 4-level radix tree indexed by the faulting virtual
address (here: by the reservation-group index, ``vpn >> 3``). A leaf slot
holds one :class:`~repro.core.reservation.Reservation`. Every node carries
its own lock; the paper uses fine-grained per-node locking so concurrent
faults from many threads of one process rarely contend. The simulator is
single-threaded but counts lock acquisitions per node so the locking
behaviour can be inspected and tested.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ReservationError
from ..obs.trace import tracepoint
from ..units import BITS_PER_LEVEL
from .reservation import LockStats, Reservation

_tp_insert = tracepoint("part.insert")
_tp_remove = tracepoint("part.remove")

#: Number of radix levels in the PaRT.
PART_LEVELS = 4
#: Slot fan-out per node.
PART_FANOUT = 1 << BITS_PER_LEVEL


class PartNode:
    """One PaRT radix node: children (interior) or reservations (leaf)."""

    __slots__ = ("level", "lock", "children", "entries")

    def __init__(self, level: int) -> None:
        self.level = level
        self.lock = LockStats()
        self.children: Dict[int, "PartNode"] = {}
        self.entries: Dict[int, Reservation] = {}

    @property
    def is_leaf(self) -> bool:
        return self.level == 1

    @property
    def live_slots(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


def _indices(group: int) -> Tuple[int, ...]:
    """Split a group index into PaRT node indices, root level first."""
    shift = (PART_LEVELS - 1) * BITS_PER_LEVEL
    out = []
    for _ in range(PART_LEVELS):
        out.append((group >> shift) & (PART_FANOUT - 1))
        shift -= BITS_PER_LEVEL
    return tuple(out)


class PageReservationTable:
    """Per-process radix tree of live reservations."""

    def __init__(self) -> None:
        self.root = PartNode(PART_LEVELS)
        self.entry_count = 0
        self.node_count = 1
        #: Total lookups (the fast-path PaRT query on every fault, §4.2).
        self.lookups = 0
        self.lookup_hits = 0

    # ------------------------------------------------------------------ #
    # Lookup / insert / remove
    # ------------------------------------------------------------------ #

    def lookup(self, group: int) -> Optional[Reservation]:
        """Return the live reservation for ``group``, if any.

        Models the PaRT query performed on every page fault: walks the
        radix path, taking each node's lock.
        """
        self.lookups += 1
        indices = _indices(group)
        node = self.root
        node.lock.acquire()
        for index in indices[:-1]:
            child = node.children.get(index)
            if child is None:
                return None
            node = child
            node.lock.acquire()
        entry = node.entries.get(indices[-1])
        if entry is not None:
            self.lookup_hits += 1
        return entry

    def insert(self, reservation: Reservation) -> None:
        """Install a new reservation; interior nodes are created on demand."""
        indices = _indices(reservation.group)
        node = self.root
        node.lock.acquire()
        for index in indices[:-1]:
            child = node.children.get(index)
            if child is None:
                child = PartNode(node.level - 1)
                node.children[index] = child
                self.node_count += 1
            node = child
            node.lock.acquire()
        leaf_index = indices[-1]
        if leaf_index in node.entries:
            raise ReservationError(
                f"group {reservation.group} already has a reservation"
            )
        node.entries[leaf_index] = reservation
        self.entry_count += 1
        if _tp_insert.enabled:
            _tp_insert.emit(
                group=reservation.group, entries=self.entry_count
            )

    def remove(self, group: int) -> Reservation:
        """Delete the reservation for ``group``; prunes empty nodes."""
        indices = _indices(group)
        path: List[Tuple[PartNode, int]] = []
        node = self.root
        for index in indices[:-1]:
            child = node.children.get(index)
            if child is None:
                raise ReservationError(f"group {group} has no reservation")
            path.append((node, index))
            node = child
        entry = node.entries.pop(indices[-1], None)
        if entry is None:
            raise ReservationError(f"group {group} has no reservation")
        self.entry_count -= 1
        if _tp_remove.enabled:
            _tp_remove.emit(group=group, entries=self.entry_count)
        for parent, index in reversed(path):
            child = parent.children[index]
            if child.live_slots:
                break
            del parent.children[index]
            self.node_count -= 1
        return entry

    # ------------------------------------------------------------------ #
    # Whole-table queries (reclamation daemon, §6.2 accounting)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.entry_count

    def iter_reservations(self) -> Iterator[Reservation]:
        """Yield every live reservation (what the reclaim daemon walks)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries.values()
            else:
                stack.extend(node.children.values())

    def unmapped_reserved_pages(self) -> int:
        """Total reserved-but-unmapped pages across all live reservations.

        This is the §6.2 metric sampled over time: the paper finds it never
        exceeds 0.2% of the benchmark's footprint.
        """
        return sum(r.unmapped_count for r in self.iter_reservations())

    def total_lock_acquisitions(self) -> int:
        """Sum of lock acquisitions over all nodes and entries."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += node.lock.acquisitions
            if node.is_leaf:
                total += sum(r.lock.acquisitions for r in node.entries.values())
            else:
                stack.extend(node.children.values())
        return total
