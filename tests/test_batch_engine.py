"""Tests for the batched engine core (``WorkloadRun._step_batched``).

Three layers of defence, mirroring ``test_fastpath.py``:

* equivalence-oracle tests pin the chunk protocol itself --
  ``expand_chunks`` of any packed stream (adapter-produced or
  array-native) reproduces the per-op stream op for op, at every chunk
  size including 1;
* a hypothesis property test runs randomly scripted scenarios -- mixed
  mmap/brk/access/phase/free streams with both regions and permissions
  varying -- under all three engine modes (batched, ``REPRO_NO_BATCH``,
  ``REPRO_NO_FASTPATH``) and requires byte-identical metrics snapshots;
* a scheduling test pins op-precise slice accounting: per-turn executed
  op counts must match the reference engine turn for turn, including
  the early slice end at every phase boundary.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GuestConfig, HostConfig, PlatformConfig
from repro.metrics.collect import snapshot_simulation
from repro.sim.fastpath import NO_BATCH_ENV, NO_FASTPATH_ENV
from repro.units import MB
from repro.workloads import (
    AccessOp,
    BrkOp,
    FreeOp,
    MmapOp,
    PhaseOp,
    ScriptedWorkload,
    WorkloadPhase,
    chunk_ops,
    expand_chunks,
)
from repro.workloads.graph import Bfs, ConnectedComponents, Nibble, PageRank
from repro.workloads.spec import Gcc, LowPressureSpec, Mcf, Omnetpp, Xz

MODES = ("batched", "fastpath", "reference")


def _force_mode(mode):
    """Set the engine-mode env vars for ``mode``; returns saved values."""
    saved = {
        name: os.environ.pop(name, None)
        for name in (NO_BATCH_ENV, NO_FASTPATH_ENV)
    }
    if mode == "fastpath":
        os.environ[NO_BATCH_ENV] = "1"
    elif mode == "reference":
        os.environ[NO_FASTPATH_ENV] = "1"
    return saved


def _restore_mode(saved):
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


def _small_platform():
    return PlatformConfig(
        host=HostConfig(memory_bytes=64 * MB),
        guest=GuestConfig(memory_bytes=32 * MB),
    )


# --------------------------------------------------------------------- #
# Chunk protocol equivalence oracle
# --------------------------------------------------------------------- #

MIXED_SCRIPT = [
    MmapOp("a", 8),
    PhaseOp(WorkloadPhase.INIT),
    *(AccessOp("a", page, block=page % 64, write=True) for page in range(8)),
    BrkOp("heap", 4),
    *(AccessOp("heap", page % 4, block=page % 64) for page in range(10)),
    PhaseOp(WorkloadPhase.COMPUTE),
    MmapOp("b", 6),
    *(
        AccessOp("b" if page % 3 else "a", page % 6, block=page % 64,
                 write=bool(page % 2))
        for page in range(20)
    ),
    FreeOp("b"),
    *(AccessOp("a", page % 8, block=page % 64) for page in range(5)),
    PhaseOp(WorkloadPhase.DONE),
]


class TestChunkProtocol:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 256])
    def test_adapter_roundtrip_at_every_chunk_size(self, chunk_size):
        expanded = list(expand_chunks(chunk_ops(MIXED_SCRIPT, chunk_size)))
        assert expanded == MIXED_SCRIPT

    def test_adapter_interns_region_table(self):
        # Chunk region tables must hold identical string objects so the
        # engine's `region is memo_region` probe never false-misses.
        names = set()
        for chunk in chunk_ops(MIXED_SCRIPT):
            names.update(id(region) for region in chunk.regions)
        assert len(names) == 3  # a, heap, b -- one object each

    @pytest.mark.parametrize(
        "workload",
        [
            Mcf(seed=3),
            Xz(seed=3),
            Gcc(seed=3),
            Omnetpp(seed=3),
            LowPressureSpec("leela", 3, accesses=2000, footprint=64),
            LowPressureSpec("leela", 3, accesses=500, footprint=16,
                            hot_blocks=1),
            LowPressureSpec("leela", 3, accesses=500, footprint=16,
                            hot_blocks=8),
            PageRank(seed=3),
            ConnectedComponents(seed=3),
            Bfs(seed=3),
            Nibble(seed=3),
        ],
        ids=lambda w: w.name,
    )
    def test_native_emitters_match_per_op_stream(self, workload):
        # Array-native ops_batched overrides must replay the exact RNG
        # draw order of ops(): the oracle is op-for-op equality.
        assert list(expand_chunks(workload.ops_batched())) == list(
            workload.ops()
        )


# --------------------------------------------------------------------- #
# Three-mode scenario identity (hypothesis)
# --------------------------------------------------------------------- #


@st.composite
def scripted_scenarios(draw):
    """A valid mixed op script over two regions plus a heap.

    Region "a" (48 pages) exceeds the 32-entry L1 DTLB, so streams
    exercise TLB evictions and LRU-order-sensitive residency -- the
    regime where a deferred-LRU bookkeeping slip shows up as a
    diverging ``tlb_misses`` count.
    """
    script = [MmapOp("a", 48), MmapOp("b", 8), BrkOp("heap", 4)]
    sizes = {"a": 48, "b": 8, "heap": 4}
    n_events = draw(st.integers(min_value=1, max_value=250))
    b_mapped = True
    for _ in range(n_events):
        kind = draw(
            st.sampled_from(
                ["access", "access", "access", "access", "phase", "remap"]
            )
        )
        if kind == "access":
            region = draw(st.sampled_from(["a", "b", "heap"]))
            if region == "b" and not b_mapped:
                region = "a"
            script.append(
                AccessOp(
                    region,
                    draw(st.integers(0, sizes[region] - 1)),
                    block=draw(st.integers(0, 63)),
                    write=draw(st.booleans()),
                )
            )
        elif kind == "phase":
            script.append(PhaseOp(WorkloadPhase.COMPUTE))
        elif b_mapped:
            script.append(FreeOp("b"))
            b_mapped = False
        else:
            script.append(MmapOp("b", 8))
            b_mapped = True
    script.append(PhaseOp(WorkloadPhase.DONE))
    return script


def _run_script(script, mode, ops_per_slice=7):
    """Run a scripted scenario under ``mode``; returns the snapshot."""
    saved = _force_mode(mode)
    try:
        from repro.sim.engine import Simulation

        sim = Simulation(_small_platform())
        sim.scheduler.ops_per_slice = ops_per_slice
        run = sim.add_workload(ScriptedWorkload("scripted", script))
        run.start_measurement()
        per_turn = []
        while not run.finished:
            sim.turn()
            per_turn.append(run.ops_executed)
        result = sim.result_for(run)
        return snapshot_simulation("bench", sim, result).to_dict(), per_turn
    finally:
        _restore_mode(saved)


class TestThreeModeIdentity:
    @given(script=scripted_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_random_scripts_identical_across_modes(self, script):
        docs = {}
        turns = {}
        for mode in MODES:
            docs[mode], turns[mode] = _run_script(script, mode)
        rendered = {
            mode: json.dumps(doc, sort_keys=True)
            for mode, doc in docs.items()
        }
        assert rendered["batched"] == rendered["fastpath"]
        assert rendered["batched"] == rendered["reference"]
        # Slice accounting is op-precise: same ops executed per turn.
        assert turns["batched"] == turns["reference"]
        assert turns["fastpath"] == turns["reference"]


# --------------------------------------------------------------------- #
# Scheduling precision
# --------------------------------------------------------------------- #


class TestSchedulingPrecision:
    def test_phase_boundary_ends_slice_early_in_every_mode(self):
        # A phase op mid-stream must end that slice in all engines, so
        # phase-triggered co-runner start/stop stays turn-exact.
        script = [
            MmapOp("a", 8),
            *(AccessOp("a", page % 8, block=0) for page in range(5)),
            PhaseOp(WorkloadPhase.COMPUTE),
            *(AccessOp("a", page % 8, block=0) for page in range(20)),
            PhaseOp(WorkloadPhase.DONE),
        ]
        turns = {
            mode: _run_script(script, mode, ops_per_slice=16)[1]
            for mode in MODES
        }
        assert turns["batched"] == turns["reference"]
        assert turns["fastpath"] == turns["reference"]
        # The first slice really did end early, at the COMPUTE PhaseOp
        # (mmap + 5 accesses + the phase op), not at the 16-op budget.
        assert turns["batched"][0] == 7

    def test_tlb_pressure_with_dl1_miss_residue(self):
        # Regression: an op that hits the translation mirror but
        # misses the data L1 is still a TLB hit, so it must refresh
        # its own TLB LRU position before replaying the data levels --
        # otherwise eviction victims diverge from the reference once
        # the footprint (48 pages) exceeds the 32-entry L1 DTLB.
        script = [MmapOp("a", 48)]
        for r in range(6):
            script.extend(
                AccessOp("a", page, block=(page * 7 + r * 13) % 64)
                for page in range(48)
            )
        script.append(PhaseOp(WorkloadPhase.DONE))
        docs = {mode: _run_script(script, mode)[0] for mode in MODES}
        rendered = {
            mode: json.dumps(doc, sort_keys=True)
            for mode, doc in docs.items()
        }
        assert rendered["batched"] == rendered["reference"]
        assert rendered["fastpath"] == rendered["reference"]

    def test_mid_chunk_resume_preserves_stream(self):
        # ops_per_slice far below CHUNK_SIZE forces every chunk to be
        # consumed across many slices; totals must still be exact.
        script = [
            MmapOp("a", 8),
            *(
                AccessOp("a", page % 8, block=page % 64, write=bool(page % 3))
                for page in range(700)
            ),
            PhaseOp(WorkloadPhase.DONE),
        ]
        docs = {}
        turns = {}
        for mode in MODES:
            docs[mode], turns[mode] = _run_script(
                script, mode, ops_per_slice=5
            )
        assert turns["batched"] == turns["reference"]
        assert json.dumps(docs["batched"], sort_keys=True) == json.dumps(
            docs["reference"], sort_keys=True
        )
        assert turns["batched"][-1] == len(script)
