"""Tests for the kernel's meminfo accounting."""

import dataclasses

import pytest

from repro.config import GuestConfig, MachineConfig
from repro.os.kernel import GuestKernel
from repro.units import MB


def total_accounted(info):
    return (
        info["free"]
        + info["pcp_cached"]
        + info["user"]
        + info["page_tables"]
        + info["reserved"]
        + info["kernel"]
    )


def make_kernel(**kwargs):
    return GuestKernel(GuestConfig(memory_bytes=16 * MB, **kwargs), MachineConfig())


class TestMeminfo:
    def test_boot_state(self):
        kernel = make_kernel()
        info = kernel.meminfo()
        assert info["total"] == 4096
        assert info["user"] == 0
        assert total_accounted(info) == info["total"]

    def test_accounting_balances_after_activity(self):
        kernel = make_kernel()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 200)
        for vpn in vma.pages():
            kernel.handle_fault(p, vpn)
        kernel.munmap(p, vma.start_vpn, 50)
        info = kernel.meminfo()
        assert info["user"] == 150
        assert info["page_tables"] > 0
        assert total_accounted(info) == info["total"]

    def test_reserved_pages_reported(self):
        kernel = make_kernel(ptemagnet_enabled=True)
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 64)
        kernel.handle_fault(p, vma.start_vpn)
        info = kernel.meminfo()
        assert info["reserved"] == 7
        assert total_accounted(info) == info["total"]

    def test_pcp_cached_reported(self):
        config = dataclasses.replace(
            GuestConfig(memory_bytes=16 * MB), pcp_enabled=True
        )
        kernel = GuestKernel(config, MachineConfig())
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 4)
        kernel.handle_fault(p, vma.start_vpn)
        info = kernel.meminfo()
        assert info["pcp_cached"] > 0
        assert total_accounted(info) == info["total"]

    def test_exit_restores_boot_accounting(self):
        kernel = make_kernel(ptemagnet_enabled=True)
        boot = kernel.meminfo()
        p = kernel.create_process("app")
        vma = kernel.mmap(p, 128)
        for vpn in vma.pages():
            kernel.handle_fault(p, vpn)
        kernel.exit_process(p)
        assert kernel.meminfo() == boot
